"""The query-session layer: connections, prepared statements, plan caching.

Until this module, every query call re-parsed its SQL, re-harvested the
statistics catalog, re-ran the logical optimizer, and re-lowered to a
physical plan — fine for one-shot experiments, fatal for a serving
workload that answers the same parameterized queries over and over.
:class:`Connection` turns the four-stage pipeline (SQL → logical plan →
logical optimizer → physical planner → executor) into a *prepare once,
execute many* lifecycle:

* :meth:`Connection.prepare` compiles SQL (or a logical plan) into a
  :class:`PreparedQuery` holding the optimized logical plan and the
  lowered physical plan, with ``?`` / ``:name`` placeholders kept
  symbolic (:class:`~repro.core.expressions.Parameter`);
* :meth:`PreparedQuery.execute` re-binds parameters by substituting
  constants into the *physical* plan — no re-parse, no re-optimize, no
  re-lower — and dispatches to the backend chosen at prepare time;
* SQL-text queries are memoized in a per-connection LRU **plan cache**
  keyed by ``(SQL text, engine, EvalConfig, catalog-epoch band)``;
* the **catalog epoch** (a monotonically increasing write version
  maintained by the storage layers) drives staleness: a prepared query
  whose epoch has drifted more than ``staleness`` writes past its last
  lowering is transparently *re-lowered* (fresh statistics, fresh
  physical choices — cheap, no parse or optimize), and the epoch *band*
  in the cache key retires whole cache generations every
  ``staleness × 16`` writes so even long-lived optimized logical plans
  eventually re-optimize against current statistics.

All physical choices a re-lowering may revise (hash vs nested-loop
joins, fallback boundaries, parallel regions) are result-invariant, so a
prepared query returns results bit-identical to a fresh evaluation at
any staleness — the differential fuzzer's prepared-statement lane holds
both engines and both backends to that.  The one documented exception:
``EvalConfig.adaptive_compression`` places AU ``Cpr`` budgets from
statistics, so a cached plan may compress differently (still *sound*,
bounds-preserving either way) than a cold run after heavy writes.

``evaluate_det`` / ``evaluate_audb`` remain as thin shims that route
through an ephemeral connection, so existing call sites keep working
unchanged.

Connections are not thread-safe; use one per worker.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from .algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union as PlanUnion,
)
from . import analysis
from .algebra.evaluator import EvalConfig, execute_physical_audb
from .algebra.optimizer import Statistics, compression_hints, optimize
from .core.aggregation import AggregateSpec
from .core.expressions import (
    And,
    Add,
    Const,
    Div,
    Eq,
    Expression,
    Geq,
    Gt,
    If,
    IsNull,
    Leq,
    Lt,
    MakeUncertain,
    Mul,
    Neg,
    Neq,
    Not,
    Or,
    Parameter,
    Sub,
    UnboundParameterError,
)
from .core.relation import AUDatabase
from .db.storage import DetDatabase
from . import telemetry as _tm
from .exec import BACKENDS
from .exec import physical as phys
from .sql.parser import parse_sql

__all__ = [
    "Connection",
    "ConnectionMetrics",
    "PreparedQuery",
    "connect",
    "bind_parameters",
    "collect_parameters",
    "DEFAULT_STALENESS",
]

#: Epoch drift (number of writes since the last lowering) beyond which a
#: prepared query re-lowers its physical plan against fresh statistics.
DEFAULT_STALENESS = 64

#: Cache-key epoch bands are this many staleness windows wide: a cached
#: *logical* optimization survives at most ``staleness × _BAND_FACTOR``
#: writes before a fresh prepare replaces it.
_BAND_FACTOR = 16

#: Per-connection plan-cache capacity (LRU eviction).
DEFAULT_CACHE_SIZE = 128

#: Per-prepared-query memo of bound physical plans (LRU): re-executing
#: a hot binding reuses the identical bound expression objects, so the
#: vectorized backend's compiled-closure cache (keyed on expression
#: identity — :mod:`repro.exec.compile`) hits instead of re-running
#: codegen per call.
_BOUND_PLAN_MEMO = 8

#: Per-prepared-query memo of results (LRU): re-executing a hot binding
#: at an unchanged catalog epoch — a read-only stretch of the workload —
#: returns the memoized relation without touching an executor.
_RESULT_MEMO = 8


# ======================================================================
# parameter binding
# ======================================================================
_BINARY = (And, Or, Eq, Neq, Leq, Lt, Geq, Gt, Add, Sub, Mul, Div)


def collect_parameters(plan: Plan) -> List[Any]:
    """All parameter keys mentioned anywhere in ``plan``, first-seen order."""
    out: List[Any] = []

    def expr(e: Optional[Expression]) -> None:
        if e is not None:
            for key in e.parameters():
                if key not in out:
                    out.append(key)

    for node in plan.walk():
        if isinstance(node, Selection):
            expr(node.condition)
        elif isinstance(node, Projection):
            for e, _name in node.columns:
                expr(e)
        elif isinstance(node, Join):
            expr(node.condition)
        elif isinstance(node, Aggregate):
            for spec in node.aggregates:
                expr(spec.expr)
            expr(node.having)
    return out


def _resolve_binding(
    keys: Sequence[Any], params: Union[Sequence[Any], Mapping[Any, Any], None]
) -> Dict[Any, Expression]:
    """Map every parameter key to a ``Const`` from the caller's values.

    ``params`` is a sequence for positional ``?`` placeholders, a
    mapping for ``:name`` (or explicit-index) placeholders, or ``None``
    for parameterless queries.  Missing keys raise
    :class:`UnboundParameterError`; surplus values are rejected too, so
    arity mistakes fail loudly.
    """
    if not keys:
        if params:
            raise UnboundParameterError(
                f"query takes no parameters, got {params!r}"
            )
        return {}
    binding: Dict[Any, Expression] = {}
    missing: List[Any] = []
    if params is None:
        missing = list(keys)
    elif isinstance(params, Mapping):
        for key in keys:
            if key in params:
                binding[key] = _as_const(params[key])
            else:
                missing.append(key)
        surplus = [k for k in params if k not in keys]
        if surplus:
            raise UnboundParameterError(
                f"unknown parameter(s) {surplus!r}; query declares {list(keys)!r}"
            )
    else:
        values = list(params)
        positions = [k for k in keys if isinstance(k, int)]
        named = [k for k in keys if not isinstance(k, int)]
        if named:
            raise UnboundParameterError(
                f"named parameter(s) {named!r} need a mapping, got a sequence"
            )
        if len(values) != len(positions) or any(
            k >= len(values) for k in positions
        ):
            raise UnboundParameterError(
                f"positional parameter(s) at index(es) {positions!r} need "
                f"exactly {len(positions)} value(s), got {len(values)}"
            )
        for key in positions:
            binding[key] = _as_const(values[key])
    if missing:
        raise UnboundParameterError(f"unbound parameter(s): {missing!r}")
    return binding


def _as_const(value: Any) -> Expression:
    return value if isinstance(value, Expression) else Const(value)


def _bind_expr(
    expr: Expression, binding: Mapping[Any, Expression]
) -> Expression:
    """``expr`` with every :class:`Parameter` replaced by its binding."""
    if isinstance(expr, Parameter):
        bound = binding.get(expr.key)
        if bound is None:
            raise UnboundParameterError(f"unbound parameter {expr!r}")
        return bound
    if not expr.parameters():
        return expr
    if isinstance(expr, _BINARY):
        return type(expr)(
            _bind_expr(expr.left, binding), _bind_expr(expr.right, binding)
        )
    if isinstance(expr, (Not, Neg, IsNull)):
        return type(expr)(_bind_expr(expr.operand, binding))
    if isinstance(expr, If):
        return If(
            _bind_expr(expr.cond, binding),
            _bind_expr(expr.then_branch, binding),
            _bind_expr(expr.else_branch, binding),
        )
    if isinstance(expr, MakeUncertain):
        return MakeUncertain(
            _bind_expr(expr.lb, binding),
            _bind_expr(expr.sg, binding),
            _bind_expr(expr.ub, binding),
        )
    raise TypeError(
        f"cannot bind parameters inside {type(expr).__name__!r}"
    )


def _bind_spec(spec: AggregateSpec, binding) -> AggregateSpec:
    if spec.expr is None or not spec.expr.parameters():
        return spec
    return AggregateSpec(spec.kind, _bind_expr(spec.expr, binding), spec.name)


def _bind_plan(plan: Plan, binding: Mapping[Any, Expression]) -> Plan:
    """A copy of the logical ``plan`` with parameters bound.

    Nodes (and whole subtrees) without parameters are returned as-is, so
    a parameterless query binds to the identical object graph —
    per-node ``actuals`` keyed by ``id(node)`` keep working.
    """
    if isinstance(plan, TableRef):
        return plan
    if isinstance(plan, Selection):
        child = _bind_plan(plan.child, binding)
        cond = _bind_expr(plan.condition, binding)
        if child is plan.child and cond is plan.condition:
            return plan
        return Selection(child, cond)
    if isinstance(plan, Projection):
        child = _bind_plan(plan.child, binding)
        cols = tuple((_bind_expr(e, binding), n) for e, n in plan.columns)
        if child is plan.child and all(
            c[0] is o[0] for c, o in zip(cols, plan.columns)
        ):
            return plan
        return Projection(child, cols)
    if isinstance(plan, Join):
        left = _bind_plan(plan.left, binding)
        right = _bind_plan(plan.right, binding)
        cond = _bind_expr(plan.condition, binding)
        if left is plan.left and right is plan.right and cond is plan.condition:
            return plan
        return Join(left, right, cond)
    if isinstance(plan, (CrossProduct, PlanUnion, Difference)):
        left = _bind_plan(plan.left, binding)
        right = _bind_plan(plan.right, binding)
        if left is plan.left and right is plan.right:
            return plan
        return type(plan)(left, right)
    if isinstance(plan, Distinct):
        child = _bind_plan(plan.child, binding)
        return plan if child is plan.child else Distinct(child)
    if isinstance(plan, Aggregate):
        child = _bind_plan(plan.child, binding)
        specs = tuple(_bind_spec(s, binding) for s in plan.aggregates)
        having = (
            _bind_expr(plan.having, binding)
            if plan.having is not None
            else None
        )
        if (
            child is plan.child
            and having is plan.having
            and all(s is o for s, o in zip(specs, plan.aggregates))
        ):
            return plan
        return Aggregate(child, plan.group_by, specs, having)
    if isinstance(plan, Rename):
        child = _bind_plan(plan.child, binding)
        return plan if child is plan.child else Rename(child, plan.mapping_dict())
    if isinstance(plan, OrderBy):
        child = _bind_plan(plan.child, binding)
        if child is plan.child:
            return plan
        return OrderBy(child, plan.keys, plan.descending)
    if isinstance(plan, Limit):
        child = _bind_plan(plan.child, binding)
        return plan if child is plan.child else Limit(child, plan.n)
    if isinstance(plan, TopK):
        child = _bind_plan(plan.child, binding)
        if child is plan.child:
            return plan
        return TopK(child, plan.keys, plan.descending, plan.n)
    raise TypeError(f"cannot bind parameters in {type(plan).__name__!r}")


def bind_parameters(
    query: Union[Plan, Expression],
    params: Union[Sequence[Any], Mapping[Any, Any], None],
) -> Union[Plan, Expression]:
    """Substitute parameter values into a logical plan or expression.

    The explicit, non-cached counterpart of
    :meth:`PreparedQuery.execute`: useful to materialize the exact query
    a binding denotes (the differential fuzzer compares prepared
    execution against fresh evaluation of this).
    """
    if isinstance(query, Expression):
        binding = _resolve_binding(query.parameters(), params)
        return _bind_expr(query, binding) if binding else query
    binding = _resolve_binding(collect_parameters(query), params)
    return _bind_plan(query, binding) if binding else query


# ----------------------------------------------------------------------
# physical-plan binding
# ----------------------------------------------------------------------
def _copy_phys(node: phys.PhysNode, template: phys.PhysNode) -> phys.PhysNode:
    node.est = template.est
    node.sources = template.sources
    return node


def _bind_phys(node: phys.PhysNode, binding) -> phys.PhysNode:
    """A copy of a physical plan with parameters bound into every
    expression position; untouched subtrees are shared, not copied."""
    if isinstance(node, (phys.Scan, phys.ParallelScan)):
        return node
    if isinstance(node, phys.FusedSelectProject):
        child = _bind_phys(node.child, binding)
        cond = (
            _bind_expr(node.condition, binding)
            if node.condition is not None
            else None
        )
        cols = (
            tuple((_bind_expr(e, binding), n) for e, n in node.columns)
            if node.columns is not None
            else None
        )
        if child is node.child and cond is node.condition and (
            cols is None
            or all(c[0] is o[0] for c, o in zip(cols, node.columns))
        ):
            return node
        return _copy_phys(phys.FusedSelectProject(child, cond, cols), node)
    if isinstance(node, phys.Rename):
        child = _bind_phys(node.child, binding)
        if child is node.child:
            return node
        return _copy_phys(phys.Rename(child, node.mapping), node)
    if isinstance(node, phys.HashJoin):
        left = _bind_phys(node.left, binding)
        right = _bind_phys(node.right, binding)
        cond = _bind_expr(node.condition, binding)
        if left is node.left and right is node.right and cond is node.condition:
            return node
        return _copy_phys(
            phys.HashJoin(
                left,
                right,
                cond,
                node.eq_pairs,
                node.pure_equi,
                partitioned=node.partitioned,
                hash_partitions=node.hash_partitions,
            ),
            node,
        )
    if isinstance(node, phys.NLJoin):
        left = _bind_phys(node.left, binding)
        right = _bind_phys(node.right, binding)
        cond = (
            _bind_expr(node.condition, binding)
            if node.condition is not None
            else None
        )
        if left is node.left and right is node.right and cond is node.condition:
            return node
        return _copy_phys(
            phys.NLJoin(left, right, cond, node.check_overlap), node
        )
    if isinstance(node, phys.CompressedJoin):
        left = _bind_phys(node.left, binding)
        right = _bind_phys(node.right, binding)
        cond = _bind_expr(node.condition, binding)
        if left is node.left and right is node.right and cond is node.condition:
            return node
        return _copy_phys(
            phys.CompressedJoin(left, right, cond, node.pair, node.buckets),
            node,
        )
    if isinstance(node, phys.Concat):
        left = _bind_phys(node.left, binding)
        right = _bind_phys(node.right, binding)
        if left is node.left and right is node.right:
            return node
        return _copy_phys(phys.Concat(left, right), node)
    if isinstance(node, phys.HashDistinct):
        child = _bind_phys(node.child, binding)
        if child is node.child:
            return node
        return _copy_phys(phys.HashDistinct(child), node)
    if isinstance(node, phys.HashAggregate):
        child = _bind_phys(node.child, binding)
        specs = tuple(_bind_spec(s, binding) for s in node.aggregates)
        having = (
            _bind_expr(node.having, binding)
            if node.having is not None
            else None
        )
        if (
            child is node.child
            and having is node.having
            and all(s is o for s, o in zip(specs, node.aggregates))
        ):
            return node
        return _copy_phys(
            phys.HashAggregate(
                child, node.group_by, specs, having, node.partial
            ),
            node,
        )
    if isinstance(node, phys.AUPartialAggregate):
        child = _bind_phys(node.child, binding)
        specs = tuple(_bind_spec(s, binding) for s in node.aggregates)
        if child is node.child and all(
            s is o for s, o in zip(specs, node.aggregates)
        ):
            return node
        return _copy_phys(
            phys.AUPartialAggregate(child, node.group_by, specs), node
        )
    if isinstance(node, phys.TopK):
        child = _bind_phys(node.child, binding)
        if child is node.child:
            return node
        return _copy_phys(
            phys.TopK(child, node.keys, node.descending, node.n), node
        )
    if isinstance(node, phys.Limit):
        child = _bind_phys(node.child, binding)
        if child is node.child:
            return node
        return _copy_phys(phys.Limit(child, node.n), node)
    if isinstance(node, phys.TupleFallback):
        inputs = tuple(_bind_phys(c, binding) for c in node.inputs)
        logical = _bind_plan(node.logical, binding)
        if logical is node.logical and all(
            i is o for i, o in zip(inputs, node.inputs)
        ):
            return node
        return _copy_phys(
            phys.TupleFallback(node.kind, logical, inputs, node.buckets), node
        )
    if isinstance(node, phys.Exchange):
        child = _bind_phys(node.child, binding)
        final = (
            _bind_phys(node.final, binding) if node.final is not None else None
        )
        if child is node.child and final is node.final:
            return node
        return _copy_phys(
            phys.Exchange(child, node.merge, node.partitions, final), node
        )
    raise TypeError(
        f"cannot bind parameters in physical node {type(node).__name__!r}"
    )


def _binding_key(binding) -> Optional[tuple]:
    """A hashable memo key for a parameter binding (``None`` when the
    values are unhashable).  The value's *type* is part of the key:
    1, 1.0, and True compare equal but bind to bit-different plans."""
    try:
        key = tuple(
            (k, type(v).__name__, v)
            for k, v in sorted(
                (
                    (k, c.value if isinstance(c, Const) else c)
                    for k, c in binding.items()
                ),
                key=lambda kv: repr(kv[0]),
            )
        )
        hash(key)
    except TypeError:
        return None
    return key


def _param_repr(params) -> Optional[str]:
    """A bounded textual form of a parameter binding for the event log."""
    if params is None:
        return None
    text = repr(params)
    return text if len(text) <= 200 else text[:197] + "..."


def _result_rows(result) -> Optional[int]:
    """Output cardinality for events/slow-log: total bag rows for a Det
    relation, AU-tuples for an AU relation, ``None`` when unknown."""
    if result is None:
        return None
    total = getattr(result, "total_rows", None)
    if total is not None:
        return total()
    try:
        return len(result)
    except TypeError:
        return None


# ======================================================================
# the session objects
# ======================================================================
#: ConnectionMetrics counter fields and their registry help strings.
_METRIC_FIELDS: "OrderedDict[str, str]" = OrderedDict(
    parses="SQL texts parsed (a plan-cache hit parses nothing).",
    optimizations="Logical optimizer runs.",
    lowerings="Physical lowerings (including re-lowerings).",
    relowerings="Staleness-triggered physical re-plans.",
    cache_hits="Plan-cache hits.",
    cache_misses="Plan-cache misses.",
    executions="Query executions.",
    result_cache_hits="Executions answered from the epoch result memo.",
    stats_refreshes="Statistics-catalog harvests.",
    statements_prepared="PreparedQuery objects compiled.",
    subscriptions="Connection.subscribe() calls.",
)


class ConnectionMetrics:
    """Lifecycle counters of one connection (all monotone).

    ``cache_hits`` / ``cache_misses`` count SQL plan-cache lookups;
    ``parses`` / ``optimizations`` / ``lowerings`` count the pipeline
    stages actually run (a cache hit runs none of them);
    ``relowerings`` counts staleness-triggered physical re-plans (a
    subset of ``lowerings``); ``stats_refreshes`` counts catalog
    harvests; ``executions`` counts query executions
    (``result_cache_hits`` of which were answered from the read-only
    epoch result memo without running an executor);
    ``subscriptions`` counts :meth:`Connection.subscribe` calls.

    Since the telemetry PR this is a *view* over the process-wide
    :class:`repro.telemetry.MetricsRegistry`: every increment of a
    per-connection counter also increments the matching registry
    counter ``repro_session_<field>_total`` (labelled by engine when
    the connection knows one), so registry exposition aggregates over
    all connections while :meth:`snapshot` stays per-connection.
    Counters reject decrements — they are monotone by contract.
    """

    def __init__(
        self,
        engine: str = "",
        registry: "Optional[_tm.MetricsRegistry]" = None,
    ) -> None:
        reg = registry if registry is not None else _tm.get_registry()
        d = self.__dict__
        d["_values"] = {name: 0 for name in _METRIC_FIELDS}
        labels = {"engine": engine} if engine else {}
        d["_counters"] = {
            name: reg.counter(
                f"repro_session_{name}_total", help_text, **labels
            )
            for name, help_text in _METRIC_FIELDS.items()
        }

    def __getattr__(self, name: str) -> int:
        values = self.__dict__.get("_values")
        if values is not None and name in values:
            return values[name]
        raise AttributeError(name)

    def __setattr__(self, name: str, value: Any) -> None:
        values = self.__dict__.get("_values")
        if values is not None and name in values:
            delta = value - values[name]
            if delta < 0:
                raise ValueError(
                    f"ConnectionMetrics.{name} is monotone; cannot go "
                    f"from {values[name]} to {value}"
                )
            values[name] = value
            if delta:
                self.__dict__["_counters"][name].inc(delta)
        else:
            self.__dict__[name] = value

    def snapshot(self) -> Dict[str, int]:
        return dict(self.__dict__["_values"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"{k}={v}" for k, v in self.__dict__["_values"].items()
        )
        return f"ConnectionMetrics({body})"


class PreparedQuery:
    """A compiled query: parsed once, optimized once, re-lowered lazily.

    Created by :meth:`Connection.prepare`.  Holds the raw logical plan
    (``plan``), the optimized logical plan (``optimized``), and — unless
    the config selects the legacy direct interpretation — the lowered
    physical plan (``pplan``) together with the catalog epoch it was
    lowered at.  :meth:`execute` binds parameter values into the cached
    physical plan and runs it; when the connection's epoch has drifted
    more than ``staleness`` writes past the last lowering, the physical
    plan is first rebuilt against fresh statistics (re-*lowered*; the
    parse and logical optimization are never repeated for the lifetime
    of the object).
    """

    def __init__(
        self,
        connection: "Connection",
        query: Union[str, Plan],
        config: EvalConfig,
    ) -> None:
        metrics = connection.metrics
        metrics.statements_prepared += 1
        self.connection = connection
        self.config = config
        if isinstance(query, str):
            self.sql: Optional[str] = query
            metrics.parses += 1
            with _tm.stage("parse"):
                self.plan = parse_sql(query)
        else:
            self.sql = None
            self.plan = query
        #: parameter keys the query declares, in first-seen order
        self.parameters = collect_parameters(self.plan)
        #: annotation semantics this query executes under — what the
        #: optimizer's rewrites must preserve
        self.semantics = "bag" if connection.engine == "det" else "au"
        # prepare-time well-formedness check (always on): unknown
        # tables/columns, incompatible set operations, and ill-typed
        # expressions fail here with a one-line diagnostic naming the
        # node and column, instead of deep inside an executor
        stats = connection.statistics()
        with _tm.stage("analyze"):
            analysis.verify_logical(self.plan, stats)
        #: names of the optimizer rewrites that fired (semiring lint)
        self.rewrite_trace: List[str] = []
        if config.optimize:
            with _tm.stage("optimize"):
                self.optimized = optimize(
                    self.plan,
                    stats,
                    join_order=config.join_order,
                    semantics=self.semantics,
                    verify=connection.verify_plans,
                    trace=self.rewrite_trace,
                )
                tr = _tm._ACTIVE
                if tr is not None:
                    # one zero-duration mark per fired rewrite rule,
                    # straight from the optimizer's _record() trace
                    for rule in self.rewrite_trace:
                        tr.mark(rule)
            metrics.optimizations += 1
            if connection.verify_plans:
                analysis.check_semiring_safety(
                    self.rewrite_trace, self.semantics
                )
        else:
            self.optimized = self.plan
        self.pplan: Optional[phys.PhysNode] = None
        self.plan_epoch: Optional[int] = None
        # binding-values -> bound physical plan (LRU), so hot bindings
        # keep stable expression identities across executions
        self._bound_plans: "OrderedDict[tuple, phys.PhysNode]" = OrderedDict()
        # binding-values -> (catalog epoch, result) (LRU): read-only
        # stretches of a workload answer repeats without executing
        self._results: "OrderedDict[tuple, tuple]" = OrderedDict()
        if self._needs_physical:
            self._lower()

    @property
    def _needs_physical(self) -> bool:
        # physical=False keeps the legacy direct interpretation of the
        # logical plan (tuple backends only — the fuzzer's reference)
        return not (self.config.backend == "tuple" and not self.config.physical)

    def _lower(self, relower: bool = False) -> None:
        with _tm.stage("lower", relower=relower):
            self._lower_inner(relower)

    def _lower_inner(self, relower: bool) -> None:
        conn = self.connection
        stats = conn.statistics()
        config = self.config
        self.pplan = phys.lower(
            self.optimized,
            stats,
            phys.PhysicalConfig(
                engine=conn.engine,
                backend=config.backend,
                parallelism=config.parallelism,
                hash_join=config.hash_join,
                join_buckets=config.join_buckets,
                aggregation_buckets=config.aggregation_buckets,
                adaptive_compression=(
                    config.adaptive_compression and config.optimize
                ),
                chunk_size=config.chunk_size,
            ),
            verify=conn.verify_plans,
        )
        self.plan_epoch = stats.epoch
        self._bound_plans.clear()  # bound copies of the old plan
        conn.metrics.lowerings += 1
        if relower:
            conn.metrics.relowerings += 1

    def execute(
        self,
        params: Union[Sequence[Any], Mapping[Any, Any], None] = None,
        actuals: Optional[Dict[int, int]] = None,
    ):
        """Run the query with ``params`` bound; returns a
        :class:`~repro.db.storage.DetRelation` (det connections) or an
        :class:`~repro.core.relation.AURelation` (AU connections).

        Re-executing a binding at an unchanged catalog epoch (no write
        happened since) returns the memoized relation of the previous
        run — treat results as read-only snapshots.
        """
        conn = self.connection
        if _tm._ACTIVE is None and conn.tracing:
            with _tm.start_trace("query") as trace:
                conn.last_trace = trace
                return self._run(params, actuals)
        return self._run(params, actuals)

    def _run(self, params, actuals):
        """The execute body: events, timing, and the slow-query offer
        wrap :meth:`_run_inner` (which does the actual work)."""
        conn = self.connection
        conn.metrics.executions += 1
        binding = _resolve_binding(self.parameters, params)
        events = conn.events
        slow_log = _tm.timing_enabled()
        timing = (
            slow_log or events is not None or _tm._ACTIVE is not None
        )
        if (
            actuals is None
            and slow_log
            and _tm.misestimation_armed()
            and self._needs_physical
        ):
            actuals = {}  # the misestimation check needs per-node rows
        if events is not None:
            events.query_begin(self.sql, params=_param_repr(params))
        start = time.perf_counter() if timing else 0.0
        result = None
        cached = False
        try:
            result, cached = self._run_inner(binding, actuals)
        finally:
            if timing:
                seconds = time.perf_counter() - start
                rows = _result_rows(result)
                conn._latency.observe(seconds)
                if events is not None:
                    events.query_end(rows, cached=cached, seconds=seconds)
                if slow_log and not cached:
                    _tm.record_query(
                        sql=self.sql,
                        engine=conn.engine,
                        backend=self.config.backend,
                        seconds=seconds,
                        rows=rows,
                        pplan=self.pplan,
                        actuals=actuals,
                        trace=_tm._ACTIVE,
                    )
        return result

    def _run_inner(self, binding, actuals):
        """Dispatch one bound execution; returns ``(result, memo_hit)``."""
        conn = self.connection
        if not self._needs_physical:
            with _tm.stage(
                "execute", engine=conn.engine, backend="legacy"
            ):
                return self._execute_legacy(binding, actuals), False
        if (
            conn.staleness >= 0
            and conn.epoch - self.plan_epoch > conn.staleness
        ):
            self._lower(relower=True)
        memo_key = None
        if actuals is None and hasattr(conn.db, "epoch"):
            memo_key = _binding_key(binding)
            if memo_key is not None:
                entry = self._results.get(memo_key)
                if entry is not None and entry[0] == conn.epoch:
                    self._results.move_to_end(memo_key)
                    conn.metrics.result_cache_hits += 1
                    tr = _tm._ACTIVE
                    if tr is not None:
                        tr.mark("result-memo-hit")
                    return entry[1], True
        pplan = self._bound_plan(binding)
        try:
            with _tm.stage(
                "execute",
                engine=conn.engine,
                backend=self.config.backend,
            ):
                if conn.engine == "det":
                    if self.config.backend == "vectorized":
                        from .exec.vectorized import execute_det

                        result = execute_det(
                            pplan,
                            conn.db,
                            actuals=actuals,
                            pool=conn._worker_pool(self.config),
                        )
                    else:
                        from .db.engine import execute_physical_det

                        result = execute_physical_det(pplan, conn.db, actuals)
                elif self.config.backend == "vectorized":
                    from .exec.vectorized import execute_audb

                    result = execute_audb(
                        pplan,
                        conn.db,
                        actuals,
                        pool=conn._worker_pool(self.config),
                    )
                else:
                    result = execute_physical_audb(pplan, conn.db, actuals)
        finally:
            if pplan is not self.pplan:
                # executors recorded actuals (and the trace its span
                # times) under the bound copy's node ids; mirror them
                # onto the cached template (structures are identical by
                # construction) so explain_physical / explain_analyze
                # on this PreparedQuery still show actual rows and time
                tr = _tm._ACTIVE
                if actuals is not None or tr is not None:
                    for template, bound in zip(
                        self.pplan.walk(), pplan.walk()
                    ):
                        if actuals is not None and id(bound) in actuals:
                            actuals[id(template)] = actuals[id(bound)]
                        if tr is not None:
                            tr.alias_node(id(template), id(bound))
        if memo_key is not None:
            self._results[memo_key] = (conn.epoch, result)
            while len(self._results) > _RESULT_MEMO:
                self._results.popitem(last=False)
        return result, False

    def _bound_plan(self, binding) -> phys.PhysNode:
        """The physical plan with ``binding`` substituted, memoized per
        binding values so re-executing a hot binding reuses the same
        expression objects (compiled-closure cache hits by identity)."""
        if not binding:
            return self.pplan
        key = _binding_key(binding)
        if key is None:
            return _bind_phys(self.pplan, binding)  # unhashable: no memo
        cached = self._bound_plans.get(key)
        if cached is not None:
            self._bound_plans.move_to_end(key)
            return cached
        pplan = _bind_phys(self.pplan, binding)
        self._bound_plans[key] = pplan
        while len(self._bound_plans) > _BOUND_PLAN_MEMO:
            self._bound_plans.popitem(last=False)
        return pplan

    def _execute_legacy(self, binding, actuals):
        """Legacy direct interpretation of the (bound) logical plan."""
        plan = _bind_plan(self.optimized, binding) if binding else self.optimized
        config = self.config
        conn = self.connection
        if conn.engine == "det":
            from .db.engine import _evaluate as det_evaluate

            return det_evaluate(plan, conn.db, actuals)
        from .algebra.evaluator import _NO_HINTS, _evaluate as au_evaluate

        hints = _NO_HINTS
        if (
            config.optimize
            and config.adaptive_compression
            and config.join_buckets is not None
        ):
            hints = compression_hints(
                plan, conn.statistics(), config.join_buckets
            )
        return au_evaluate(plan, conn.db, config, hints, actuals)

    # -- introspection -------------------------------------------------
    def explain_logical(
        self, actuals: Optional[Dict[int, int]] = None
    ) -> str:
        """Render the optimized logical plan with row estimates."""
        from .algebra.optimizer import explain

        return explain(
            self.optimized, self.connection.statistics(), actuals=actuals
        )

    def explain_physical(
        self, actuals: Optional[Dict[int, int]] = None
    ) -> str:
        """Render the cached physical plan with the chosen algorithms."""
        if self.pplan is None:
            return "(legacy direct interpretation: no physical plan)"
        return phys.explain_physical(self.pplan, actuals=actuals)

    def explain_analyze(
        self,
        params: Union[Sequence[Any], Mapping[Any, Any], None] = None,
    ) -> str:
        """Execute the query under a trace and render the physical plan
        with per-node actual rows, estimation-error factor, and
        inclusive wall time (plus a pipeline-stage summary footer).

        Always really executes — the result memo is bypassed — and
        always traces this one run, whatever the connection's or
        process's tracing setting.  The trace is kept on
        ``connection.last_trace`` for deeper inspection
        (:meth:`~repro.telemetry.QueryTrace.render` /
        :meth:`~repro.telemetry.QueryTrace.chrome_trace`).
        """
        conn = self.connection
        actuals: Dict[int, int] = {}
        with _tm.start_trace("explain analyze") as trace:
            conn.last_trace = trace
            result = self._run(params, actuals)
        rows = _result_rows(result)
        stages = "  ".join(
            f"{span.name} {span.duration * 1e3:.3f}ms"
            for span in trace.root.children
            if span.cat == "stage"
        )
        header = (
            f"EXPLAIN ANALYZE ({conn.engine}, "
            f"backend={'legacy' if self.pplan is None else self.config.backend}"
            f"): {rows if rows is not None else '?'} rows "
            f"in {trace.duration * 1e3:.3f}ms"
        )
        if self.pplan is None:
            body = self.explain_logical(actuals=actuals)
        else:
            body = phys.explain_physical(
                self.pplan,
                actuals=actuals,
                times=trace.node_times,
                attrs=trace.node_attrs,
            )
        footer = f"stages: {stages}" if stages else ""
        return "\n".join(part for part in (header, body, footer) if part)


class Connection:
    """A query session owning a database, its statistics, and a plan cache.

    ``engine`` is inferred from the database type
    (:class:`~repro.db.storage.DetDatabase` → ``"det"``,
    :class:`~repro.core.relation.AUDatabase` → ``"au"``) or passed
    explicitly for duck-typed databases.  ``config`` is the default
    :class:`~repro.algebra.evaluator.EvalConfig` for queries on this
    connection (per-call overrides get their own cache entries).

    ``staleness`` bounds how many writes a cached physical plan may
    trail the catalog by before executing re-lowers it; ``0`` re-lowers
    on every drift, ``-1`` never re-lowers (the cache-key epoch band is
    then also frozen).

    ``verify`` controls the static plan verifier
    (:mod:`repro.analysis`) for queries prepared on this connection:
    ``True`` re-verifies the plan after every optimizer pass and after
    lowering, ``False`` disables those debug assertions, and ``None``
    (default) defers to the process-wide switch
    (:func:`repro.analysis.verification_enabled`, env
    ``REPRO_VERIFY_PLANS``).  Prepare-time schema checking — unknown
    tables/columns, union compatibility, ill-typed expressions — is
    always on; it is part of compilation, not a debug assertion.

    ``trace`` controls telemetry tracing the same tri-state way:
    ``True`` wraps every :meth:`execute` in a
    :class:`~repro.telemetry.QueryTrace` (kept on :attr:`last_trace`),
    ``False`` disables it, ``None`` (default) defers to the
    process-wide switch (:func:`repro.telemetry.tracing_enabled`, env
    ``REPRO_TRACE``).  ``events`` opts into the structured
    :class:`~repro.telemetry.EventLog` on :attr:`events` (pass an
    ``int`` for a non-default ring capacity).
    """

    def __init__(
        self,
        db: Union[DetDatabase, AUDatabase],
        engine: Optional[str] = None,
        config: Optional[EvalConfig] = None,
        staleness: int = DEFAULT_STALENESS,
        cache_size: int = DEFAULT_CACHE_SIZE,
        verify: Optional[bool] = None,
        trace: Optional[bool] = None,
        events: Union[bool, int] = False,
    ) -> None:
        if engine is None:
            if isinstance(db, DetDatabase):
                engine = "det"
            elif isinstance(db, AUDatabase):
                engine = "au"
            else:
                raise TypeError(
                    f"cannot infer engine for {type(db).__name__}; pass "
                    "engine='det' or engine='au'"
                )
        if engine not in ("det", "au"):
            raise ValueError(f"unknown engine {engine!r}; expected det or au")
        self.db = db
        self.engine = engine
        self.config = config if config is not None else EvalConfig()
        if self.config.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.config.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self.staleness = staleness
        self.cache_size = cache_size
        self.verify = verify
        self.trace = trace
        self.metrics = ConnectionMetrics(engine)
        #: the most recent QueryTrace captured on this connection
        self.last_trace: Optional[_tm.QueryTrace] = None
        #: the structured event log, or None when not opted in
        self.events: Optional[_tm.EventLog] = None
        if events:
            capacity = (
                events
                if isinstance(events, int) and not isinstance(events, bool)
                else 4096
            )
            self.events = _tm.EventLog(self, capacity=capacity)
        self._latency = _tm.get_registry().histogram(
            "repro_query_seconds",
            "Timed query execution latency (tracing, events, or the "
            "slow-query log armed).",
            engine=engine,
        )
        self._cache: "OrderedDict[tuple, PreparedQuery]" = OrderedDict()
        self._stats: Optional[Statistics] = None
        # id(view) -> live MaterializedView (see subscribe())
        self._subscriptions: Dict[int, Any] = {}
        # the persistent parallel worker pool (repro.exec.parallel),
        # created lazily by the first parallel vectorized execution and
        # reused across queries until close()
        self._pool: Optional[Any] = None

    def _worker_pool(self, config: EvalConfig) -> Optional[Any]:
        """The session's persistent worker pool for parallel vectorized
        execution — created lazily, sized to ``config.parallelism``,
        ``None`` when parallelism is off or ``fork`` is unavailable.

        The pool itself re-forks on database epoch drift
        (:meth:`repro.exec.parallel.WorkerPool.ensure`); this only
        manages sizing and lifetime."""
        import os

        if config.parallelism <= 1 or not hasattr(os, "fork"):
            return None
        if self._pool is None or self._pool.size != config.parallelism:
            if self._pool is not None:
                self._pool.close()
            from .exec.parallel import WorkerPool

            self._pool = WorkerPool(config.parallelism)
        return self._pool

    def close(self) -> None:
        """Release session resources: shuts the persistent worker pool
        down and drops the plan cache.  The connection remains usable
        (pools and cache entries are recreated on demand)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._cache.clear()

    @property
    def verify_plans(self) -> bool:
        """Effective verification setting: the connection's ``verify``
        knob, or the process-wide switch when unset."""
        if self.verify is not None:
            return self.verify
        return analysis.verification_enabled()

    @property
    def tracing(self) -> bool:
        """Effective tracing setting: the connection's ``trace`` knob,
        or the process-wide switch when unset."""
        if self.trace is not None:
            return self.trace
        return _tm.tracing_enabled()

    # -- catalog -------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The database's current catalog epoch (0 if unversioned)."""
        return getattr(self.db, "epoch", 0)

    def statistics(self) -> Statistics:
        """The statistics catalog, re-harvested only when the epoch moved
        (and then incrementally — see
        :class:`repro.algebra.stats.StatsAccumulator`).

        Duck-typed databases without an ``epoch`` attribute cannot
        signal writes, so they re-harvest on *every* call (matching the
        pre-session behavior; per-relation caches still amortize the
        scan) — note prepared queries on such databases never see epoch
        drift and therefore never re-lower.
        """
        if (
            self._stats is None
            or not hasattr(self.db, "epoch")
            or self._stats.epoch != self.epoch
        ):
            self._stats = Statistics.from_database(self.db)
            self.metrics.stats_refreshes += 1
        return self._stats

    def _epoch_band(self) -> int:
        if self.staleness < 0:
            return 0
        if self.staleness == 0:
            return self.epoch
        return self.epoch // (self.staleness * _BAND_FACTOR)

    # -- the prepare/execute lifecycle ---------------------------------
    def prepare(
        self,
        query: Union[str, Plan],
        config: Optional[EvalConfig] = None,
    ) -> PreparedQuery:
        """Compile ``query`` (SQL text or a logical plan).

        SQL text is memoized in the plan cache under
        ``(sql, engine, config, epoch band)``; logical plans are
        compiled fresh each time (they have no value identity to key
        on) but still amortize across their own ``execute`` calls.
        """
        config = config if config is not None else self.config
        if config.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {config.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if not isinstance(query, str):
            return PreparedQuery(self, query, config)
        key = (query, self.engine, config, self._epoch_band())
        cached = self._cache.get(key)
        if cached is not None:
            self.metrics.cache_hits += 1
            self._cache.move_to_end(key)
            return cached
        self.metrics.cache_misses += 1
        prepared = PreparedQuery(self, query, config)
        self._cache[key] = prepared
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return prepared

    def execute(
        self,
        query: Union[str, Plan],
        params: Union[Sequence[Any], Mapping[Any, Any], None] = None,
        config: Optional[EvalConfig] = None,
        actuals: Optional[Dict[int, int]] = None,
    ):
        """``prepare(query).execute(params)`` — with SQL text, repeated
        calls hit the plan cache and skip parse/optimize/lower.

        With tracing on (``trace=True`` or the process switch) the
        whole call runs under one :class:`~repro.telemetry.QueryTrace`
        — a cold prepare contributes parse/analyze/optimize/lower stage
        spans ahead of the execute span — kept on :attr:`last_trace`.
        """
        if _tm._ACTIVE is None and self.tracing:
            with _tm.start_trace("query") as trace:
                self.last_trace = trace
                return self.prepare(query, config).execute(
                    params, actuals=actuals
                )
        return self.prepare(query, config).execute(params, actuals=actuals)

    def explain_analyze(
        self,
        query: Union[str, Plan],
        params: Union[Sequence[Any], Mapping[Any, Any], None] = None,
        config: Optional[EvalConfig] = None,
    ) -> str:
        """EXPLAIN ANALYZE: execute ``query`` under a trace and render
        its physical plan with per-node actual rows, estimation-error
        factor, and inclusive wall time.  See
        :meth:`PreparedQuery.explain_analyze`."""
        return self.prepare(query, config).explain_analyze(params)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- incremental view maintenance ----------------------------------
    def subscribe(self, query: Union[str, Plan], params=None):
        """Subscribe to ``query``: returns a live
        :class:`~repro.ivm.MaterializedView` kept consistent with the
        database under writes.

        The view is maintained per write by a *delta plan* derived from
        the optimized logical plan (see :mod:`repro.ivm`): the linear
        fragment propagates deltas algebraically, a root bag aggregate
        merges per-group semiring partials, and any non-linear residue
        re-executes epoch-gated at read time.  ``params`` are bound once,
        up front — a subscription denotes one concrete query.

        Call :meth:`MaterializedView.result` to read,
        :meth:`unsubscribe` (or ``view.close()``) to stop maintenance.
        """
        from .ivm import MaterializedView

        view = MaterializedView(self, query, params)
        self._subscriptions[id(view)] = view
        self.metrics.subscriptions += 1
        return view

    def unsubscribe(self, view) -> None:
        """Stop maintaining ``view``: detaches its write sinks and frees
        the registry entry.  Idempotent; equals ``view.close()``."""
        view.close()

    @property
    def subscriptions(self) -> tuple:
        """The connection's live subscriptions, registration order."""
        return tuple(self._subscriptions.values())


def connect(
    db: Union[DetDatabase, AUDatabase], **kwargs: Any
) -> Connection:
    """Open a :class:`Connection` to ``db`` (keyword args pass through)."""
    return Connection(db, **kwargs)
