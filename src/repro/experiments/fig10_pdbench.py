"""Experiment E1/E2 — Figure 10: PDBench SPJ queries across systems.

Figure 10a sweeps the amount of uncertainty (2/5/10/30 % of cells) at a
fixed scale; Figure 10b sweeps the database size at 2 % uncertainty.  Both
report each system's runtime relative to deterministic SGQP (``Det``) over
the PDBench select-project-join queries.

Systems: Det, UA-DB, AU-DB, Libkin, MayBMS (possible answers), MCDB
(10 samples).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..algebra.evaluator import EvalConfig, evaluate_audb
from ..baselines.libkin import evaluate_libkin, null_db_from_xdb
from ..baselines.maybms import evaluate_maybms_possible
from ..baselines.mcdb import run_mcdb
from ..baselines.uadb import UADatabase, evaluate_uadb
from ..core.relation import AUDatabase
from ..db.engine import evaluate_det
from ..tpch.pdbench import make_pdbench
from ..tpch.queries import pdbench_spj_queries
from .common import print_experiment, time_call

__all__ = ["SYSTEMS", "run_uncertainty_sweep", "run_scale_sweep", "main"]

AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)


def _system_runners(instance) -> Dict[str, Callable[[], None]]:
    queries = pdbench_spj_queries()
    det_world = instance.selected_world()
    audb = AUDatabase(instance.audb().relations)
    uadb = UADatabase.from_xdb(instance.xdb)
    null_db = null_db_from_xdb(instance.xdb)

    def run_det():
        for plan in queries.values():
            evaluate_det(plan, det_world)

    def run_audb():
        for plan in queries.values():
            evaluate_audb(plan, audb, AUDB_CONFIG)

    def run_uadb():
        for plan in queries.values():
            evaluate_uadb(plan, uadb)

    def run_libkin():
        for plan in queries.values():
            evaluate_libkin(plan, null_db)

    def run_maybms():
        for plan in queries.values():
            evaluate_maybms_possible(plan, instance.xdb)

    def run_mcdb_all():
        for plan in queries.values():
            run_mcdb(plan, instance.xdb, n_samples=10)

    return {
        "Det": run_det,
        "UA-DB": run_uadb,
        "AU-DB": run_audb,
        "Libkin": run_libkin,
        "MayBMS": run_maybms,
        "MCDB": run_mcdb_all,
    }


SYSTEMS = ["Det", "UA-DB", "AU-DB", "Libkin", "MayBMS", "MCDB"]


def run_uncertainty_sweep(
    scale: float = 0.3,
    uncertainties=(0.02, 0.05, 0.10, 0.30),
    repeat: int = 1,
) -> List[dict]:
    """Figure 10a: runtime ratio vs Det while varying uncertainty."""
    rows: List[dict] = []
    for u in uncertainties:
        instance = make_pdbench(scale=scale, uncertainty=u)
        runners = _system_runners(instance)
        det_time, _ = time_call(runners["Det"], repeat)
        for system in SYSTEMS:
            seconds, _ = time_call(runners[system], repeat)
            rows.append(
                {
                    "uncertainty": f"{int(u * 100)}%",
                    "system": system,
                    "seconds": seconds,
                    "ratio_vs_det": seconds / det_time if det_time else float("inf"),
                }
            )
    return rows


def run_scale_sweep(
    scales=(0.1, 0.3, 1.0), uncertainty: float = 0.02, repeat: int = 1
) -> List[dict]:
    """Figure 10b: runtime ratio vs Det while varying database size."""
    rows: List[dict] = []
    for scale in scales:
        instance = make_pdbench(scale=scale, uncertainty=uncertainty)
        runners = _system_runners(instance)
        det_time, _ = time_call(runners["Det"], repeat)
        for system in SYSTEMS:
            seconds, _ = time_call(runners[system], repeat)
            rows.append(
                {
                    "scale": scale,
                    "system": system,
                    "seconds": seconds,
                    "ratio_vs_det": seconds / det_time if det_time else float("inf"),
                }
            )
    return rows


def main() -> None:
    print_experiment(
        "Figure 10a: PDBench SPJ, varying uncertainty (ratio vs Det)",
        run_uncertainty_sweep(),
    )
    print_experiment(
        "Figure 10b: PDBench SPJ, varying scale at 2% uncertainty",
        run_scale_sweep(),
    )


if __name__ == "__main__":
    main()
