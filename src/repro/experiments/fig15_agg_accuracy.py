"""Experiment E10 — Figure 15: aggregation accuracy vs attribute range.

For x-DBs with 2/3/5 % uncertain tuples and attribute ranges covering
1..10 % of the domain, measure

* **over-grouping %** (15a): how many extra inputs the AU-DB associates
  with each output group relative to the inputs that can truly contribute
  (group-by range over-estimation inflates ``ð(g)``);
* **range over-estimation factor** (15b): the AU-DB's SUM bound width
  relative to the maximally tight width (computed exactly per group via
  block decomposition, :mod:`repro.experiments.groundtruth`).
"""

from __future__ import annotations

from typing import List

from ..core.aggregation import agg_sum, aggregate
from ..workloads.micro import micro_instance
from .common import print_experiment
from .groundtruth import exact_sum_bounds, true_group_contributors

__all__ = ["run", "main"]


def run(
    n_rows: int = 800,
    uncertainties=(0.02, 0.03, 0.05),
    range_fractions=(0.01, 0.02, 0.04, 0.06, 0.08, 0.10),
    seed: int = 4,
) -> List[dict]:
    rows: List[dict] = []
    for uncertainty in uncertainties:
        for frac in range_fractions:
            _det, xrel = micro_instance(
                n_rows,
                n_cols=2,
                uncertainty=uncertainty,
                range_fraction=frac,
                domain=(1, 1000),
                seed=seed,
                group_domain=(1, 1000),
            )
            audb = xrel.to_audb()
            result = aggregate(audb, ["a0"], [agg_sum("a1", "s")])

            group_idx = [0]
            truth_contrib = true_group_contributors(xrel, group_idx)
            truth_bounds = exact_sum_bounds(xrel, group_idx, lambda alt: alt[1])

            # AU-DB contributor counts per output group (|ð(g)|)
            over_group_pcts: List[float] = []
            range_factors: List[float] = []
            au_rows = list(audb.tuples())
            for t, _ann in result.tuples():
                g_box = t[0]
                sg_key = (g_box.sg,)
                audb_n = sum(
                    1 for at, _a in au_rows if at[0].overlaps(g_box)
                )
                true_n = truth_contrib.get(sg_key, 0)
                if true_n > 0:
                    over_group_pcts.append(
                        100.0 * max(0, audb_n - true_n) / true_n
                    )
                exact = truth_bounds.get(sg_key)
                if exact is not None:
                    exact_width = exact[1] - exact[0]
                    au_width = t[1].width()
                    if exact_width > 0:
                        range_factors.append(max(1.0, au_width / exact_width))
                    elif au_width == 0:
                        range_factors.append(1.0)
            rows.append(
                {
                    "uncertainty": f"{uncertainty:.0%}",
                    "range_fraction": f"{frac:.0%}",
                    "over_grouping_pct": (
                        sum(over_group_pcts) / len(over_group_pcts)
                        if over_group_pcts
                        else 0.0
                    ),
                    "range_overestimation": (
                        sum(range_factors) / len(range_factors)
                        if range_factors
                        else 1.0
                    ),
                }
            )
    return rows


def main() -> None:
    print_experiment("Figure 15: aggregation accuracy vs attribute range", run())


if __name__ == "__main__":
    main()
