"""Run all experiment harnesses: ``python -m repro.experiments [figures...]``.

Without arguments runs every figure's harness at default (laptop) sizes
and prints the paper-style tables.  Pass figure names to select a subset,
e.g. ``python -m repro.experiments fig10 fig17``.
"""

from __future__ import annotations

import sys

from . import fig10_pdbench, fig11_agg_chain, fig12_tpch, fig13_micro
from . import fig14_join_opt, fig15_agg_accuracy, fig16_multijoin, fig17_realworld

EXPERIMENTS = {
    "fig10": fig10_pdbench.main,
    "fig11": fig11_agg_chain.main,
    "fig12": fig12_tpch.main,
    "fig13": fig13_micro.main,
    "fig14": fig14_join_opt.main,
    "fig15": fig15_agg_accuracy.main,
    "fig16": fig16_multijoin.main,
    "fig17": fig17_realworld.main,
}


def main(argv: list[str]) -> int:
    wanted = argv or sorted(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    for name in wanted:
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
