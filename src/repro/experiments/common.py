"""Shared utilities for the experiment harnesses.

Every ``fig*`` module exposes ``run(...) -> list[dict]`` returning one row
per measured configuration and a ``main()`` that prints the rows as the
table/series the paper reports.  The pytest-benchmark files under
``benchmarks/`` wrap the same hot paths.

The harnesses evaluate through the query-session layer
(:mod:`repro.session`): :func:`session_pair` opens one deterministic and
one AU :class:`~repro.session.Connection` over the same uncertain
instance, so a harness can either time the cold path (a fresh prepare
per call, the paper's one-shot regime) or hold the connection and time
cache-hit executions (the serving regime benchmarked by
``benchmarks/bench_session.py``).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from ..algebra.evaluator import EvalConfig
from ..core.relation import AUDatabase
from ..db.storage import DetDatabase, DetRelation
from ..session import Connection

__all__ = [
    "time_call",
    "format_table",
    "print_experiment",
    "sgw_database",
    "session_pair",
]


def sgw_database(audb: AUDatabase) -> DetDatabase:
    """The deterministic selected-guess world encoded by ``audb``."""
    det = DetDatabase({})
    for name, rel in audb.relations.items():
        d = DetRelation(rel.schema)
        for row, mult in rel.selected_guess_world().items():
            d.add(row, mult)
        det[name] = d
    return det


def session_pair(
    audb: AUDatabase,
    det_config: EvalConfig | None = None,
    au_config: EvalConfig | None = None,
) -> Tuple[Connection, Connection]:
    """``(det connection over the SGW, AU connection)`` for one AU-DB."""
    det_conn = Connection(sgw_database(audb), engine="det", config=det_config)
    au_conn = Connection(audb, engine="au", config=au_config)
    return det_conn, au_conn


def time_call(fn: Callable[[], Any], repeat: int = 1) -> Tuple[float, Any]:
    """Best-of-``repeat`` wall-clock timing; returns (seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def format_table(rows: Sequence[Dict[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(columns or rows[0].keys())
    rendered = [[_fmt(row.get(c)) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), max(len(r[i]) for r in rendered))
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def print_experiment(title: str, rows: Sequence[Dict[str, Any]]) -> None:
    print(f"\n== {title} ==")
    print(format_table(rows))
