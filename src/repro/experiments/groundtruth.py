"""Exact ground truth over block-independent (x-) relations.

The accuracy experiments (Figures 15 and 17) compare system outputs
against the *precise* certain/possible answers and maximally tight
aggregate bounds.  Enumerating every possible world is exponential, but
for single-relation queries over x-DBs block independence makes the exact
answers computable in polynomial time:

* a projected tuple is **possible** iff some alternative produces it;
* it is **certain** iff some non-optional block produces it under *every*
  alternative;
* exact SUM/COUNT bounds per group decompose into per-block minimum and
  maximum contributions;
* exact MIN/MAX bounds follow from per-block mandatory/possible values.

These are the ground-truth oracles PDBench-style experiments rely on.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.ranges import domain_max, domain_min
from ..core.sums import add_product, finish, new_acc
from ..incomplete.xdb import XRelation

__all__ = [
    "spj_possible_tuples",
    "spj_certain_tuples",
    "group_values",
    "certain_group_values",
    "exact_sum_bounds",
    "exact_count_bounds",
    "exact_minmax_bounds",
    "true_group_contributors",
]

Predicate = Callable[[Dict[str, Any]], bool]
Row = Tuple[Any, ...]


def _project(alt: Row, idx: Sequence[int]) -> Row:
    return tuple(alt[i] for i in idx)


def spj_possible_tuples(
    xrel: XRelation, predicate: Predicate, project_idx: Sequence[int]
) -> Set[Row]:
    """All tuples some world's select-project query result contains."""
    out: Set[Row] = set()
    for xt in xrel.xtuples:
        for alt in xt.alternatives:
            if predicate(dict(zip(xrel.schema, alt))):
                out.add(_project(alt, project_idx))
    return out


def spj_certain_tuples(
    xrel: XRelation, predicate: Predicate, project_idx: Sequence[int]
) -> Set[Row]:
    """Tuples present in every world's result.

    A tuple is certain when some non-optional block yields it (satisfying
    the predicate) under every alternative.  (Distinct blocks producing it
    in complementary worlds cannot occur under block independence unless
    one block already guarantees it — different blocks vary independently.)
    """
    out: Set[Row] = set()
    for xt in xrel.xtuples:
        if xt.optional:
            continue
        projected = set()
        ok = True
        for alt in xt.alternatives:
            if not predicate(dict(zip(xrel.schema, alt))):
                ok = False
                break
            projected.add(_project(alt, project_idx))
        if ok and len(projected) == 1:
            out.add(next(iter(projected)))
    return out


def group_values(xrel: XRelation, group_idx: Sequence[int]) -> Set[Row]:
    """All possible group-by values."""
    out: Set[Row] = set()
    for xt in xrel.xtuples:
        for alt in xt.alternatives:
            out.add(_project(alt, group_idx))
    return out


def certain_group_values(xrel: XRelation, group_idx: Sequence[int]) -> Set[Row]:
    """Group values guaranteed to appear in every world."""
    out: Set[Row] = set()
    for xt in xrel.xtuples:
        if xt.optional:
            continue
        values = {_project(alt, group_idx) for alt in xt.alternatives}
        if len(values) == 1:
            out.add(next(iter(values)))
    return out


def true_group_contributors(
    xrel: XRelation, group_idx: Sequence[int]
) -> Dict[Row, int]:
    """Per possible group value: how many blocks can truly contribute."""
    counts: Dict[Row, int] = {}
    for xt in xrel.xtuples:
        values = {_project(alt, group_idx) for alt in xt.alternatives}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
    return counts


def exact_sum_bounds(
    xrel: XRelation,
    group_idx: Sequence[int],
    value_of: Callable[[Row], float],
) -> Dict[Row, Tuple[float, float]]:
    """Maximally tight SUM bounds per possible group (block decomposition).

    For each block and group value ``v``: the block's contribution ranges
    over the values of alternatives matching ``v`` plus 0 whenever the
    block can avoid the group (an alternative with a different group value
    or optionality).

    Per-block contributions sum through :mod:`repro.core.sums` so the
    totals are the correctly-rounded exact sums: comparisons against
    system bounds computed the same way (the AU engine's SUM fold) are
    then decided by the real-valued quantities, not by accumulation
    order.
    """
    bounds: Dict[Row, Tuple[float, float]] = {}
    for v in group_values(xrel, group_idx):
        lo_total = new_acc()
        hi_total = new_acc()
        for xt in xrel.xtuples:
            matching = [
                value_of(alt)
                for alt in xt.alternatives
                if _project(alt, group_idx) == v
            ]
            if not matching:
                continue
            can_avoid = xt.optional or len(matching) < len(xt.alternatives)
            lo = min(matching)
            hi = max(matching)
            if can_avoid:
                lo = min(lo, 0.0)
                hi = max(hi, 0.0)
            add_product(lo_total, lo, 1)
            add_product(hi_total, hi, 1)
        bounds[v] = (float(finish(lo_total)), float(finish(hi_total)))
    return bounds


def exact_count_bounds(
    xrel: XRelation, group_idx: Sequence[int]
) -> Dict[Row, Tuple[int, int]]:
    """Maximally tight COUNT(*) bounds per possible group."""
    bounds: Dict[Row, Tuple[int, int]] = {}
    for v in group_values(xrel, group_idx):
        lo_total = 0
        hi_total = 0
        for xt in xrel.xtuples:
            matching = sum(
                1 for alt in xt.alternatives if _project(alt, group_idx) == v
            )
            if matching == 0:
                continue
            must_match = (not xt.optional) and matching == len(xt.alternatives)
            lo_total += 1 if must_match else 0
            hi_total += 1
        bounds[v] = (lo_total, hi_total)
    return bounds


def exact_minmax_bounds(
    xrel: XRelation,
    group_idx: Sequence[int],
    value_of: Callable[[Row], Any],
    kind: str = "max",
) -> Dict[Row, Tuple[Any, Any]]:
    """Maximally tight MIN/MAX bounds per possible group."""
    if kind not in {"min", "max"}:
        raise ValueError(kind)
    bounds: Dict[Row, Tuple[Any, Any]] = {}
    for v in group_values(xrel, group_idx):
        possible_vals: List[Any] = []
        mandatory_worst: List[Any] = []
        for xt in xrel.xtuples:
            matching = [
                value_of(alt)
                for alt in xt.alternatives
                if _project(alt, group_idx) == v
            ]
            if not matching:
                continue
            possible_vals.extend(matching)
            must_match = (not xt.optional) and len(matching) == len(xt.alternatives)
            if must_match:
                # worst case for the aggregate among the block's choices
                mandatory_worst.append(
                    domain_max(matching) if kind == "min" else domain_min(matching)
                )
        if not possible_vals:
            continue
        if kind == "min":
            lo = domain_min(possible_vals)
            hi = (
                domain_min(mandatory_worst)
                if mandatory_worst
                else domain_max(possible_vals)
            )
        else:
            hi = domain_max(possible_vals)
            lo = (
                domain_max(mandatory_worst)
                if mandatory_worst
                else domain_min(possible_vals)
            )
        bounds[v] = (lo, hi)
    return bounds
