"""Experiment E3 — Figure 11: chained aggregation operators.

The paper's "simple aggregation" experiment chains 1..10 aggregation
operators (each consuming the previous operator's materialized output) and
compares Det, AU-DB, Trio, Symb (symbolic semimodule encoding), and MCDB.

The chain here is a rollup: a wide table with group columns ``a0..a8`` and
value column ``a9``; level ``i`` aggregates ``SUM(v)`` grouped by the
first ``9 - i`` group columns, so each level feeds the next.

Trio's bound representation is not closed under aggregation — following
the paper's note that Trio "produces incorrect answers" on chains, each
Trio level re-encodes the previous level's [lb, ub] as a two-alternative
x-tuple (timed, but lossy).  Symb keeps the computation symbolic and
re-extracts bounds per level (the stand-in for its per-level solver call).
"""

from __future__ import annotations

import random
from typing import List

from ..algebra.ast import Aggregate, Plan, TableRef
from ..algebra.evaluator import EvalConfig, evaluate_audb
from ..baselines.mcdb import run_mcdb
from ..baselines.symbolic import chain_symbolic_aggregates
from ..baselines.trio import trio_aggregate
from ..core.aggregation import agg_sum
from ..core.relation import AUDatabase
from ..db.engine import evaluate_det
from ..db.storage import DetDatabase
from ..incomplete.xdb import XDatabase, XRelation
from ..workloads.micro import micro_instance
from .common import print_experiment, time_call

__all__ = ["make_chain_plan", "run", "main"]

N_GROUP_COLS = 9
VALUE_COL = f"a{N_GROUP_COLS}"


def make_chain_plan(n_ops: int) -> Plan:
    """Rollup chain: level i groups by the first ``9 - i`` columns."""
    if not 1 <= n_ops <= N_GROUP_COLS:
        raise ValueError(f"n_ops must be in 1..{N_GROUP_COLS}")
    plan: Plan = TableRef("t")
    value = VALUE_COL
    for level in range(n_ops):
        keys = [f"a{i}" for i in range(N_GROUP_COLS - 1 - level)]
        plan = Aggregate(plan, keys, [agg_sum(value, "v")])
        value = "v"
    return plan


def _trio_chain(xrel: XRelation, n_ops: int) -> XRelation:
    current = xrel
    value_col = VALUE_COL
    for level in range(n_ops):
        keys = [f"a{i}" for i in range(N_GROUP_COLS - 1 - level)]
        bound_rows = trio_aggregate(current, keys, agg_sum(value_col, "v"))
        nxt = XRelation(tuple(keys) + ("v",))
        # lossy re-encoding: each group's [lb, ub] becomes a 2-alt block
        for row in bound_rows:
            lo_alt = row.group + (row.lower,)
            hi_alt = row.group + (row.upper,)
            if lo_alt == hi_alt:
                nxt.add_certain(lo_alt)
            else:
                nxt.add([lo_alt, hi_alt])
        current, value_col = nxt, "v"
    return current


def run(
    n_rows: int = 1500,
    uncertainty: float = 0.05,
    ops_range=(1, 2, 4, 6, 8),
    seed: int = 5,
) -> List[dict]:
    det_rel, xrel = micro_instance(
        n_rows,
        n_cols=N_GROUP_COLS + 1,
        uncertainty=uncertainty,
        domain=(1, 100),
        group_domain=(1, 3),
        seed=seed,
    )
    det_db = DetDatabase({"t": xrel.selected_world()})
    audb = AUDatabase({"t": xrel.to_audb()})
    xdb = XDatabase({"t": xrel})
    config = EvalConfig(aggregation_buckets=32)

    rows: List[dict] = []
    for n_ops in ops_range:
        plan = make_chain_plan(n_ops)
        t_det, _ = time_call(lambda: evaluate_det(plan, det_db))
        t_audb, _ = time_call(lambda: evaluate_audb(plan, audb, config))
        t_trio, _ = time_call(lambda: _trio_chain(xrel, n_ops))
        t_symb, _ = time_call(
            lambda: chain_symbolic_aggregates(xrel, VALUE_COL, n_ops)
        )
        t_mcdb, _ = time_call(lambda: run_mcdb(plan, xdb, n_samples=10))
        rows.append(
            {
                "n_agg_ops": n_ops,
                "Det": t_det,
                "AU-DB": t_audb,
                "Trio": t_trio,
                "Symb": t_symb,
                "MCDB": t_mcdb,
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 11: chained aggregation (seconds)", run())


if __name__ == "__main__":
    main()
