"""Experiment E12 — Figure 17: real-world key-repair datasets.

Pipeline per dataset (netflix / crimes / healthcare analogs):

1. generate the raw relation with key violations;
2. apply the key-repair lens → AU-relation + underlying x-relation;
3. run the dataset's SPJ and group-by queries on AU-DB, Trio, MCDB, and
   UA-DB;
4. score each system against the exact ground truth (block decomposition):
   certain-tuple recall, attribute-bound tightness (min/max over certain
   tuples), and possible-tuple recall by id and by value.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..algebra.ast import Aggregate, Plan, Projection, Selection, TableRef
from ..algebra.evaluator import EvalConfig, evaluate_audb
from ..baselines.mcdb import run_mcdb
from ..baselines.trio import trio_aggregate, trio_spj_possible
from ..baselines.uadb import UADatabase, evaluate_uadb
from ..core.expressions import Const, Expression, Var
from ..core.relation import AUDatabase, AURelation
from ..incomplete.xdb import XDatabase, XRelation
from ..lenses import key_repair_lens
from ..accuracy import (
    audb_certain_keys,
    bound_tightness,
    possible_recall_by_id,
    possible_recall_by_value,
)
from ..workloads.realworld import (
    make_crimes,
    make_healthcare,
    make_netflix,
    realworld_queries,
)
from .common import print_experiment, time_call
from .groundtruth import (
    exact_count_bounds,
    exact_minmax_bounds,
    exact_sum_bounds,
    group_values,
    certain_group_values,
    spj_certain_tuples,
    spj_possible_tuples,
)

__all__ = ["run", "main"]

AUDB_CONFIG = EvalConfig(join_buckets=32, aggregation_buckets=32)


# ----------------------------------------------------------------------
# plan introspection (queries are single-table SPJ or single aggregates)
# ----------------------------------------------------------------------
def _compile_spj(plan: Plan, schema: Sequence[str]):
    """Extract (predicate, projection indexes) from a Projection/Selection
    over a single table."""
    conditions: List[Expression] = []
    node = plan
    project_cols: Optional[List[str]] = None
    while True:
        if isinstance(node, Projection):
            project_cols = [name for _e, name in node.columns]
            node = node.child
        elif isinstance(node, Selection):
            conditions.append(node.condition)
            node = node.child
        elif isinstance(node, TableRef):
            break
        else:
            raise TypeError(f"not a single-table SPJ plan: {type(node).__name__}")
    if project_cols is None:
        project_cols = list(schema)
    project_idx = [list(schema).index(c) for c in project_cols]

    def predicate(row: Dict[str, Any]) -> bool:
        return all(bool(c.eval(row)) for c in conditions)

    return predicate, project_idx, project_cols


def _value_getter(spec, schema: Sequence[str]) -> Callable:
    if spec.kind == "count":
        return lambda alt: 1
    (var,) = spec.expr.variables()
    idx = list(schema).index(var)
    return lambda alt: alt[idx]


def _exact_bounds_for(spec, xrel: XRelation, group_idx):
    value_of = _value_getter(spec, xrel.schema)
    if spec.kind in {"sum", "avg"}:
        return exact_sum_bounds(xrel, group_idx, value_of)
    if spec.kind == "count":
        return exact_count_bounds(xrel, group_idx)
    return exact_minmax_bounds(xrel, group_idx, value_of, spec.kind)


def _recall(reported: Set, truth: Set) -> float:
    if not truth:
        return 1.0
    return len(truth & reported) / len(truth)


def _fmt_pct(x: float) -> str:
    if isinstance(x, float) and math.isnan(x):
        return "N.A."
    return f"{100 * x:.1f}%"


# ----------------------------------------------------------------------
# per-system evaluation
# ----------------------------------------------------------------------
def _score_audb_spj(result: AURelation, truth) -> Dict[str, Any]:
    true_certain, true_possible, key_cols, exact_bounds = truth
    certain_keys = audb_certain_keys(result, key_cols)
    lo, hi = bound_tightness(result, exact_bounds, key_cols)
    return {
        "cert_recall": _recall(certain_keys, {k for k in true_certain}),
        "bounds_min": lo,
        "bounds_max": hi,
        "pos_by_id": possible_recall_by_id(
            result, {t: 1 for t in true_possible}, key_cols, [0]
        ),
        "pos_by_val": possible_recall_by_value(
            result, {t: 1 for t in true_possible}
        ),
    }


def _evaluate_query(qname: str, dataset, plan: Plan) -> List[dict]:
    lens = key_repair_lens(dataset.relation, list(dataset.key_columns))
    xrel = lens.xdb
    schema = list(xrel.schema)
    audb = AUDatabase({dataset.name: lens.audb})
    xdb = XDatabase({dataset.name: xrel})
    uadb = UADatabase.from_xdb(xdb)

    rows: List[dict] = []
    is_aggregate = isinstance(plan, Aggregate)

    if not is_aggregate:
        predicate, project_idx, project_cols = _compile_spj(plan, schema)
        true_possible = spj_possible_tuples(xrel, predicate, project_idx)
        true_certain_tuples = spj_certain_tuples(xrel, predicate, project_idx)
        key_cols = [project_cols[0]]
        true_certain_keys = {(t[0],) for t in true_certain_tuples}
        # exact per-id attribute bounds from the possible tuples
        exact_bounds: Dict[Tuple[Any, ...], List[Tuple[Any, Any]]] = {}
        for t in true_possible:
            key = (t[0],)
            rest = t[1:]
            if key not in exact_bounds:
                exact_bounds[key] = [(v, v) for v in rest]
            else:
                exact_bounds[key] = [
                    (min(lo, v, key=repr) if not _is_num(v) else min(lo, v),
                     max(hi, v, key=repr) if not _is_num(v) else max(hi, v))
                    for (lo, hi), v in zip(exact_bounds[key], rest)
                ]
        truth = (true_certain_keys, true_possible, key_cols, exact_bounds)

        # --- AU-DB ---
        seconds, result = time_call(lambda: evaluate_audb(plan, audb, AUDB_CONFIG))
        rows.append({"system": "AU-DB", "seconds": seconds, **_score_audb_spj(result, truth)})

        # --- Trio ---
        def run_trio():
            return trio_spj_possible(xrel, predicate)

        seconds, (trio_rel, trio_cert) = time_call(run_trio)
        trio_possible = {tuple(t[i] for i in project_idx) for t in trio_rel.rows}
        trio_certain_keys = {
            (tuple(t[i] for i in project_idx)[0],)
            for t, flag in trio_cert.items()
            if flag
        }
        rows.append(
            {
                "system": "Trio",
                "seconds": seconds,
                "cert_recall": _recall(trio_certain_keys, true_certain_keys),
                "bounds_min": 1.0,
                "bounds_max": 1.0,
                "pos_by_id": _recall({(t[0],) for t in trio_possible},
                                     {(t[0],) for t in true_possible}),
                "pos_by_val": _recall(trio_possible, true_possible),
            }
        )

        # --- MCDB ---
        seconds, mcdb = time_call(lambda: run_mcdb(plan, xdb, n_samples=10))
        mcdb_possible = set(mcdb.possible_tuples())
        rows.append(
            {
                "system": "MCDB",
                "seconds": seconds,
                "cert_recall": float("nan"),
                "bounds_min": float("nan"),
                "bounds_max": float("nan"),
                "pos_by_id": _recall({(t[0],) for t in mcdb_possible},
                                     {(t[0],) for t in true_possible}),
                "pos_by_val": _recall(mcdb_possible, true_possible),
            }
        )

        # --- UA-DB ---
        seconds, ua = time_call(lambda: evaluate_uadb(plan, uadb))
        ua_certain_keys = {(t[0],) for t, (lb, _sg) in ua.tuples() if lb > 0}
        ua_possible = set(ua.rows)
        rows.append(
            {
                "system": "UA-DB",
                "seconds": seconds,
                "cert_recall": _recall(ua_certain_keys, true_certain_keys),
                "bounds_min": float("nan"),
                "bounds_max": float("nan"),
                "pos_by_id": _recall({(t[0],) for t in ua_possible},
                                     {(t[0],) for t in true_possible}),
                "pos_by_val": _recall(ua_possible, true_possible),
            }
        )
        return rows

    # ------------------------------------------------------------------
    # group-by aggregate queries
    # ------------------------------------------------------------------
    group_cols = list(plan.group_by)
    group_idx = [schema.index(c) for c in group_cols]
    (spec,) = plan.aggregates
    true_groups = group_values(xrel, group_idx)
    certain_groups = certain_group_values(xrel, group_idx)
    exact = _exact_bounds_for(spec, xrel, group_idx)
    exact_bounds = {g: [b] for g, b in exact.items()}
    true_possible_tuples = {
        g + (b[0],) for g, b in exact.items()
    } | {g + (b[1],) for g, b in exact.items()}
    truth = (certain_groups, true_possible_tuples, group_cols, exact_bounds)

    # --- AU-DB ---
    seconds, result = time_call(lambda: evaluate_audb(plan, audb, AUDB_CONFIG))
    score = _score_audb_spj(result, truth)
    rows.append({"system": "AU-DB", "seconds": seconds, **score})

    # --- Trio ---
    seconds, trio_rows = time_call(lambda: trio_aggregate(xrel, group_cols, spec))
    trio_groups = {r.group for r in trio_rows}
    trio_certain = {r.group for r in trio_rows if r.certain}
    tightness: List[float] = []
    covered_vals = 0
    for r in trio_rows:
        ex = exact.get(r.group)
        if ex is None:
            continue
        ex_width = _width(ex[0], ex[1])
        width = _width(r.lower, r.upper)
        if ex_width > 0:
            tightness.append(max(1.0, width / ex_width))
        else:
            tightness.append(1.0 if width == 0 else 1.0 + width)
        if _le(r.lower, ex[0]) and _le(ex[1], r.upper):
            covered_vals += 1
    rows.append(
        {
            "system": "Trio",
            "seconds": seconds,
            "cert_recall": _recall(trio_certain, certain_groups),
            "bounds_min": min(tightness) if tightness else float("nan"),
            "bounds_max": max(tightness) if tightness else float("nan"),
            "pos_by_id": _recall(trio_groups, true_groups),
            "pos_by_val": covered_vals / len(exact) if exact else 1.0,
        }
    )

    # --- MCDB ---
    seconds, mcdb = time_call(lambda: run_mcdb(plan, xdb, n_samples=10))
    mcdb_groups = {t[: len(group_cols)] for t in mcdb.possible_tuples()}
    mcdb_bounds = mcdb.attribute_bounds(group_cols)
    covered = 0
    for g, (lo, hi) in exact.items():
        got = mcdb_bounds.get(g)
        if got and _le(got[0][0], lo) and _le(hi, got[0][1]):
            covered += 1
    rows.append(
        {
            "system": "MCDB",
            "seconds": seconds,
            "cert_recall": float("nan"),
            "bounds_min": float("nan"),
            "bounds_max": float("nan"),
            "pos_by_id": _recall(mcdb_groups, true_groups),
            "pos_by_val": covered / len(exact) if exact else 1.0,
        }
    )

    # --- UA-DB ---
    seconds, ua = time_call(lambda: evaluate_uadb(plan, uadb))
    ua_groups = {t[: len(group_cols)] for t in ua.rows}
    rows.append(
        {
            "system": "UA-DB",
            "seconds": seconds,
            "cert_recall": 0.0 if certain_groups else 1.0,
            "bounds_min": float("nan"),
            "bounds_max": float("nan"),
            "pos_by_id": _recall(ua_groups, true_groups),
            "pos_by_val": 0.0 if exact else 1.0,
        }
    )
    return rows


def _is_num(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _width(lo, hi) -> float:
    if _is_num(lo) and _is_num(hi):
        return float(hi) - float(lo)
    return 0.0 if repr(lo) == repr(hi) else 1.0


def _le(a, b) -> bool:
    from ..core.ranges import domain_le

    return domain_le(a, b)


def run(sizes: Optional[Dict[str, int]] = None) -> List[dict]:
    sizes = sizes or {}
    datasets = {
        "netflix": make_netflix(sizes.get("netflix", 2000)),
        "crimes": make_crimes(sizes.get("crimes", 6000)),
        "healthcare": make_healthcare(sizes.get("healthcare", 3000)),
    }
    rows: List[dict] = []
    for qname, (ds_name, plan) in realworld_queries().items():
        for result_row in _evaluate_query(qname, datasets[ds_name], plan):
            rows.append({"query": qname, "dataset": ds_name, **result_row})
    return rows


def main() -> None:
    rows = run()
    for row in rows:
        for col in ("cert_recall", "pos_by_id", "pos_by_val"):
            row[col] = _fmt_pct(row[col])
    print_experiment("Figure 17: real-world datasets", rows)


if __name__ == "__main__":
    main()
