"""Experiments E5-E8 — Figure 13: aggregation micro-benchmarks.

* 13a: runtime vs number of group-by attributes (5 % uncertainty);
* 13b: runtime vs number of aggregation functions (1 group-by);
* 13c: runtime vs attribute-range width for several compression budgets;
* 13d: compression budget CT vs runtime *and* mean result-range width
  (the accuracy/performance trade-off).
"""

from __future__ import annotations

from typing import List

from ..algebra.ast import Aggregate, TableRef
from ..algebra.evaluator import EvalConfig, evaluate_audb
from ..core.aggregation import agg_sum
from ..core.relation import AUDatabase
from ..db.engine import evaluate_det
from ..db.storage import DetDatabase
from ..accuracy import mean_numeric_range
from ..workloads.micro import micro_instance
from .common import print_experiment, time_call

__all__ = [
    "run_group_by_sweep",
    "run_agg_function_sweep",
    "run_attribute_range_sweep",
    "run_compression_tradeoff",
    "main",
]


def _setup(n_rows, n_cols, uncertainty, range_fraction=1.0, seed=9,
           group_domain=(1, 100)):
    _det, xrel = micro_instance(
        n_rows,
        n_cols=n_cols,
        uncertainty=uncertainty,
        range_fraction=range_fraction,
        seed=seed,
        group_domain=group_domain,
    )
    det_db = DetDatabase({"t": xrel.selected_world()})
    audb = AUDatabase({"t": xrel.to_audb()})
    return det_db, audb


def run_group_by_sweep(
    n_rows: int = 3000,
    n_cols: int = 40,
    group_counts=(1, 5, 10, 20, 39),
    uncertainty: float = 0.05,
) -> List[dict]:
    """Figure 13a: SUM grouped by 1..n-1 attributes."""
    det_db, audb = _setup(n_rows, n_cols, uncertainty)
    config = EvalConfig(aggregation_buckets=25)
    rows: List[dict] = []
    for k in group_counts:
        keys = [f"a{i}" for i in range(k)]
        plan = Aggregate(TableRef("t"), keys, [agg_sum(f"a{n_cols - 1}", "s")])
        t_audb, _ = time_call(lambda: evaluate_audb(plan, audb, config))
        t_det, _ = time_call(lambda: evaluate_det(plan, det_db))
        rows.append(
            {
                "group_by_attrs": k,
                "AU-DB": t_audb,
                "Det": t_det,
                "ratio": t_audb / t_det if t_det else float("inf"),
            }
        )
    return rows


def run_agg_function_sweep(
    n_rows: int = 3000,
    n_cols: int = 40,
    agg_counts=(1, 5, 10, 20, 39),
    uncertainty: float = 0.05,
) -> List[dict]:
    """Figure 13b: varying the number of aggregation functions."""
    det_db, audb = _setup(n_rows, n_cols, uncertainty, group_domain=(1, 20))
    config = EvalConfig(aggregation_buckets=25)
    rows: List[dict] = []
    for k in agg_counts:
        aggs = [agg_sum(f"a{i + 1}", f"s{i}") for i in range(k)]
        plan = Aggregate(TableRef("t"), ["a0"], aggs)
        t_audb, _ = time_call(lambda: evaluate_audb(plan, audb, config))
        t_det, _ = time_call(lambda: evaluate_det(plan, det_db))
        rows.append(
            {
                "agg_functions": k,
                "AU-DB": t_audb,
                "Det": t_det,
                "ratio": t_audb / t_det if t_det else float("inf"),
            }
        )
    return rows


def run_attribute_range_sweep(
    n_rows: int = 3000,
    range_fractions=(0.0, 0.25, 0.5, 0.75, 1.0),
    cts=(4, 32, 256, 512),
    uncertainty: float = 0.05,
) -> List[dict]:
    """Figure 13c: attribute-range width vs runtime, per compression CT."""
    rows: List[dict] = []
    for frac in range_fractions:
        det_db, audb = _setup(
            n_rows, 5, uncertainty, range_fraction=frac,
            group_domain=(1, 100_000),
        )
        plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
        for ct in cts:
            config = EvalConfig(aggregation_buckets=ct)
            seconds, _ = time_call(lambda: evaluate_audb(plan, audb, config))
            rows.append(
                {
                    "range_fraction": frac,
                    "CT": ct,
                    "seconds": seconds,
                }
            )
    return rows


def run_compression_tradeoff(
    n_rows: int = 2000,
    cts=(4, 32, 256, 4096, 65536),
    uncertainty: float = 0.10,
) -> List[dict]:
    """Figure 13d: compression budget vs runtime and mean bound width."""
    det_db, audb = _setup(
        n_rows, 5, uncertainty, group_domain=(1, 10_000),
    )
    plan = Aggregate(TableRef("t"), ["a0"], [agg_sum("a1", "s")])
    rows: List[dict] = []
    for ct in cts:
        config = EvalConfig(aggregation_buckets=ct)
        seconds, result = time_call(lambda: evaluate_audb(plan, audb, config))
        rows.append(
            {
                "CT": ct,
                "seconds": seconds,
                "mean_range": mean_numeric_range(result, "s"),
            }
        )
    return rows


def main() -> None:
    print_experiment("Figure 13a: varying #group-by attributes", run_group_by_sweep())
    print_experiment("Figure 13b: varying #aggregation functions", run_agg_function_sweep())
    print_experiment("Figure 13c: varying attribute range (seconds)", run_attribute_range_sweep())
    print_experiment("Figure 13d: compression trade-off", run_compression_tradeoff())


if __name__ == "__main__":
    main()
