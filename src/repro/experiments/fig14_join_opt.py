"""Experiment E9 — Figure 14: the join optimization.

Equality join between two uncertain tables while sweeping the input size;
compares the naive interval-overlap join against the split+compress
rewrite at several compression budgets.  Reports runtime (14a) and the
result's possible-tuple mass Σ ub (14b — the accuracy cost of compression:
compressed results are smaller but carry more possible mass per tuple).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.compression import optimized_join
from ..core.expressions import Var
from ..core.operators import join as naive_join
from ..core.relation import AURelation
from ..workloads.micro import micro_instance
from .common import print_experiment, time_call

__all__ = ["run", "main"]


def _make_side(n_rows: int, uncertainty: float, range_fraction: float, seed: int,
               name_prefix: str) -> AURelation:
    _det, xrel = micro_instance(
        n_rows,
        n_cols=2,
        uncertainty=uncertainty,
        range_fraction=range_fraction,
        domain=(1, 1000),
        seed=seed,
    )
    audb = xrel.to_audb()
    renamed = AURelation([f"{name_prefix}{i}" for i in range(2)])
    for t, ann in audb.tuples():
        renamed.add(t, ann)
    return renamed


def run(
    sizes=(250, 500, 1000),
    cts=(None, 4, 32, 256),
    uncertainty: float = 0.03,
    range_fraction: float = 0.02,
) -> List[dict]:
    rows: List[dict] = []
    cond = Var("l0") == Var("r0")
    for n in sizes:
        left = _make_side(n, uncertainty, range_fraction, seed=n, name_prefix="l")
        right = _make_side(n, uncertainty, range_fraction, seed=n + 1, name_prefix="r")
        for ct in cts:
            if ct is None:
                seconds, result = time_call(
                    lambda: naive_join(
                        left, right, cond, allow_certain_hash=False
                    )
                )
                label = "Non-Op"
            else:
                seconds, result = time_call(
                    lambda: optimized_join(left, right, cond, "l0", "r0", buckets=ct)
                )
                label = f"CT={ct}"
            possible_mass = sum(ann[2] for _t, ann in result.tuples())
            rows.append(
                {
                    "size": n,
                    "variant": label,
                    "seconds": seconds,
                    "result_tuples": len(result),
                    "possible_mass": possible_mass,
                }
            )
    return rows


def main() -> None:
    print_experiment("Figure 14: join optimization", run())


if __name__ == "__main__":
    main()
