"""Experiment E11 — Figure 16: multi-join chains with/without compression.

Chains of 1..4 equality joins over uncertain tables; without compression
the intermediate possible results blow up multiplicatively (the paper sees
four orders of magnitude at 4 joins), while compression caps every
intermediate at the budget CT.
"""

from __future__ import annotations

from typing import List, Optional

from ..algebra.ast import Join, Plan, TableRef
from ..algebra.evaluator import EvalConfig, evaluate_audb
from ..core.expressions import Var
from ..core.relation import AUDatabase, AURelation
from ..workloads.micro import micro_instance
from .common import print_experiment, time_call

__all__ = ["make_chain", "run", "main"]


def _make_table(n_rows: int, uncertainty: float, seed: int, index: int) -> AURelation:
    _det, xrel = micro_instance(
        n_rows,
        n_cols=2,
        uncertainty=uncertainty,
        range_fraction=0.075,
        domain=(1, n_rows),
        seed=seed,
    )
    audb = xrel.to_audb()
    renamed = AURelation([f"t{index}_a", f"t{index}_b"])
    for t, ann in audb.tuples():
        renamed.add(t, ann)
    return renamed


def make_chain(n_joins: int) -> Plan:
    """``t0 ⋈ t1 ⋈ ... ⋈ t{n}`` on ``t{i}.b = t{i+1}.a``."""
    plan: Plan = TableRef("t0")
    for i in range(n_joins):
        plan = Join(
            plan, TableRef(f"t{i + 1}"), Var(f"t{i}_b") == Var(f"t{i + 1}_a")
        )
    return plan


def run(
    n_rows: int = 300,
    join_counts=(1, 2, 3, 4),
    cts=(4, 16, 64, 256, None),
    uncertainties=(0.03, 0.10),
    timeout_mass: int = 5_000_000,
) -> List[dict]:
    rows: List[dict] = []
    for uncertainty in uncertainties:
        db = AUDatabase(
            {
                f"t{i}": _make_table(n_rows, uncertainty, seed=50 + i, index=i)
                for i in range(max(join_counts) + 1)
            }
        )
        for ct in cts:
            label = "No Comp." if ct is None else str(ct)
            # the paper's unoptimized baseline is a pure interval nested
            # loop (Postgres cannot hash-join the inequality conditions)
            config = EvalConfig(join_buckets=ct, hash_join=ct is not None)
            for k in join_counts:
                plan = make_chain(k)
                seconds, result = time_call(lambda: evaluate_audb(plan, db, config))
                rows.append(
                    {
                        "compression": label,
                        "uncertainty": f"{uncertainty:.0%}",
                        "n_joins": k,
                        "seconds": seconds,
                        "result_tuples": len(result),
                    }
                )
                if len(result) > timeout_mass:
                    break
    return rows


def main() -> None:
    print_experiment("Figure 16: multi-join chains", run())


if __name__ == "__main__":
    main()
