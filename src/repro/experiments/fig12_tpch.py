"""Experiment E4 — Figure 12: TPC-H queries Q1/Q3/Q5/Q7/Q10.

The paper reports runtimes for AU-DB, Det, and MCDB on uncertain TPC-H
instances at (uncertainty, scale) configurations 2%/SF0.1, 2%/SF1, 5%/SF1,
10%/SF1, and 30%/SF1.  We sweep the same uncertainty grid with the scale
knob mapped to laptop-sized instances.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebra.evaluator import EvalConfig
from ..baselines.mcdb import run_mcdb
from ..core.relation import AUDatabase
from ..session import Connection
from ..tpch.pdbench import make_pdbench
from ..tpch.queries import tpch_queries
from .common import print_experiment, time_call

__all__ = ["run", "main", "DEFAULT_CONFIGS"]

# (label, scale, uncertainty) — scale 1.0 here plays the paper's SF1
DEFAULT_CONFIGS: List[Tuple[str, float, float]] = [
    ("2%/SF0.1", 0.1, 0.02),
    ("2%/SF1", 0.5, 0.02),
    ("5%/SF1", 0.5, 0.05),
    ("10%/SF1", 0.5, 0.10),
    ("30%/SF1", 0.5, 0.30),
]

AUDB_CONFIG = EvalConfig(join_buckets=64, aggregation_buckets=64)


def run(
    configs: List[Tuple[str, float, float]] | None = None,
    queries: Dict | None = None,
) -> List[dict]:
    configs = configs or DEFAULT_CONFIGS
    queries = queries or tpch_queries()
    rows: List[dict] = []
    for label, scale, uncertainty in configs:
        instance = make_pdbench(scale=scale, uncertainty=uncertainty)
        audb = AUDatabase(instance.audb().relations)
        # one session per engine and instance; the paper's one-shot
        # regime still pays the full pipeline per query (plans are not
        # SQL text, so nothing is served from the plan cache)
        det_conn = Connection(instance.selected_world(), engine="det")
        au_conn = Connection(audb, engine="au", config=AUDB_CONFIG)
        for qname, plan in queries.items():
            t_audb, _ = time_call(lambda: au_conn.execute(plan))
            t_det, _ = time_call(lambda: det_conn.execute(plan))
            t_mcdb, _ = time_call(lambda: run_mcdb(plan, instance.xdb, n_samples=10))
            rows.append(
                {
                    "config": label,
                    "query": qname,
                    "AU-DB": t_audb,
                    "Det": t_det,
                    "MCDB": t_mcdb,
                    "AU-DB/Det": t_audb / t_det if t_det else float("inf"),
                    "MCDB/AU-DB": t_mcdb / t_audb if t_audb else float("inf"),
                }
            )
    return rows


def main() -> None:
    print_experiment("Figure 12: TPC-H query runtimes (seconds)", run())


if __name__ == "__main__":
    main()
