"""Typed schema inference over the logical plan algebra.

A :class:`Schema` maps each output column of a plan to a
:class:`ColumnInfo`: an inferred type from a small lattice
(:data:`TYPE_NUMBER` / :data:`TYPE_STRING` / :data:`TYPE_BOOL` with
:data:`TYPE_ANY` as top), a nullability flag, and an
annotation-*certainty* flag (``certain=True`` means the catalog proves
every value of the column is a point value, never a proper AU range).

Inference is bottom-up and *permissive where the runtime is*: the
universal domain order makes comparisons between any two values legal,
so type mismatches only become :class:`PlanTypeError` where evaluation
would raise a ``TypeError`` in every world (e.g. ``string + number``);
everything else unifies to :data:`TYPE_ANY`.  Unknown subtrees (tables
missing from the catalog, plan nodes the analysis does not know)
produce ``None`` instead of a schema, and every check downstream of an
unknown schema is skipped — verification never rejects a plan for lack
of catalog knowledge, only for provable inconsistency.

Certainty provenance mirrors the evaluation semantics: base columns are
certain when their harvested ``uncertain_fraction`` is exactly 0,
constants are certain, ``MakeUncertain`` is not, operators propagate
the conjunction of their operands, and aggregate outputs are
conservatively uncertain (group membership may differ across worlds).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..algebra import ast
from ..core import expressions as ex
from ..core.aggregation import AggregateSpec
from .errors import (
    PlanCompatibilityError,
    PlanReferenceError,
    PlanTypeError,
)

__all__ = [
    "TYPE_NUMBER",
    "TYPE_STRING",
    "TYPE_BOOL",
    "TYPE_ANY",
    "ColumnInfo",
    "Schema",
    "unify",
    "infer_expression",
    "infer_logical",
    "table_schema",
]

TYPE_NUMBER = "number"
TYPE_STRING = "string"
TYPE_BOOL = "bool"
TYPE_ANY = "any"


@dataclass(frozen=True)
class ColumnInfo:
    """One inferred output column: name, type, nullability, certainty."""

    name: str
    type: str = TYPE_ANY
    nullable: bool = True
    certain: bool = False

    def __repr__(self) -> str:
        flags = []
        if self.nullable:
            flags.append("null")
        if self.certain:
            flags.append("certain")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.name}:{self.type}{suffix}"


class Schema:
    """An ordered tuple of :class:`ColumnInfo` with name lookup.

    Duplicate names are allowed (join outputs may collide); lookup is
    last-wins, matching how the executors build their row index
    (:meth:`repro.core.expressions.RowView.index_of`).
    """

    __slots__ = ("columns", "_by_name")

    def __init__(self, columns: Sequence[ColumnInfo]) -> None:
        self.columns: Tuple[ColumnInfo, ...] = tuple(columns)
        self._by_name: Dict[str, ColumnInfo] = {c.name: c for c in self.columns}

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def mapping(self) -> Dict[str, ColumnInfo]:
        return self._by_name

    def get(self, name: str) -> Optional[ColumnInfo]:
        return self._by_name.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> "Iterator[ColumnInfo]":
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:
        return f"Schema({', '.join(repr(c) for c in self.columns)})"


def unify(a: str, b: str) -> str:
    """Join of two lattice types; mismatches go to top, never raise."""
    if a == b:
        return a
    return TYPE_ANY


# ----------------------------------------------------------------------
# value / base-column typing
# ----------------------------------------------------------------------
def _value_type(value: Any) -> str:
    if isinstance(value, bool):
        return TYPE_BOOL
    if isinstance(value, (int, float)):
        return TYPE_NUMBER
    if isinstance(value, str):
        return TYPE_STRING
    # RangeValue (duck-typed to avoid importing the core at call sites
    # that only see plain values): type by the selected guess, falling
    # back to the bounds when the guess is null
    if hasattr(value, "sg") and hasattr(value, "lb") and hasattr(value, "ub"):
        for bound in (value.sg, value.lb, value.ub):
            if bound is not None:
                return _value_type(bound)
    return TYPE_ANY


def _column_from_stats(name: str, col: Any) -> ColumnInfo:
    """Base-table column info from a harvested
    :class:`~repro.algebra.stats.ColumnStats` (``None`` = no catalog)."""
    if col is None:
        return ColumnInfo(name)
    lo = getattr(col, "min_value", None)
    hi = getattr(col, "max_value", None)
    kind = TYPE_ANY
    if lo is not None and hi is not None:
        kind = unify(_value_type(lo), _value_type(hi))
    elif lo is not None:
        kind = _value_type(lo)
    elif hi is not None:
        kind = _value_type(hi)
    return ColumnInfo(
        name,
        kind,
        nullable=getattr(col, "null_fraction", 1.0) > 0.0,
        certain=getattr(col, "uncertain_fraction", 1.0) == 0.0,
    )


# Per-catalog memo for base-table schemas.  A Statistics catalog is an
# immutable snapshot (frozen dataclass; every refresh builds a new
# object and fresh ColumnStats), so caching on catalog *identity* is
# sound — the weakref guards against id() reuse after the snapshot is
# garbage-collected.  This matters because per-rewrite verification
# re-infers the same base tables once per optimizer pass.
_TABLE_SCHEMA_CACHE: Dict[
    int, Tuple[Any, Dict[str, Optional[Schema]]]
] = {}
_TABLE_SCHEMA_CACHE_MAX = 8


def _table_schema_uncached(name: str, catalog: Any) -> Optional[Schema]:
    schemas = getattr(catalog, "schemas", None) or {}
    names = schemas.get(name)
    if names is None:
        return None
    columns = (getattr(catalog, "columns", None) or {}).get(name) or {}
    return Schema([_column_from_stats(a, columns.get(a)) for a in names])


def table_schema(name: str, catalog: Any) -> Optional[Schema]:
    """Schema of base table ``name`` per the statistics catalog
    (``None`` when the catalog does not know the table)."""
    if catalog is None:
        return None
    key = id(catalog)
    entry = _TABLE_SCHEMA_CACHE.get(key)
    if entry is None or entry[0]() is not catalog:
        if len(_TABLE_SCHEMA_CACHE) >= _TABLE_SCHEMA_CACHE_MAX:
            _TABLE_SCHEMA_CACHE.clear()
        try:
            ref = weakref.ref(catalog)
        except TypeError:  # non-weakrefable duck-typed catalog
            return _table_schema_uncached(name, catalog)
        entry = (ref, {})
        _TABLE_SCHEMA_CACHE[key] = entry
    per_table = entry[1]
    if name not in per_table:
        per_table[name] = _table_schema_uncached(name, catalog)
    return per_table[name]


# ----------------------------------------------------------------------
# expression inference
# ----------------------------------------------------------------------
Env = Optional[Mapping[str, ColumnInfo]]

_COMPARISONS = (ex.Eq, ex.Neq, ex.Leq, ex.Lt, ex.Geq, ex.Gt)
_BOOLEANS = (ex.And, ex.Or)


def infer_expression(expr: ex.Expression, env: Env, where: str = "") -> ColumnInfo:
    """Infer the (anonymous) type of ``expr`` over column environment ``env``.

    ``env`` is a name → :class:`ColumnInfo` mapping (last-wins, as built
    by :meth:`Schema.mapping`), or ``None`` when the input schema is
    unknown — every reference then resolves permissively.  ``where``
    names the plan node for diagnostics.  Raises
    :class:`PlanReferenceError` for a variable missing from a *known*
    environment and :class:`PlanTypeError` for arithmetic that fails in
    every world.
    """
    suffix = f" in {where}" if where else ""
    if isinstance(expr, ex.Var):
        if env is None:
            return ColumnInfo(expr.name)
        info = env.get(expr.name)
        if info is None:
            # same leading phrase as the runtime's KeyError so callers
            # matching on "unbound variable" see the identical failure,
            # just at prepare time and with the node named
            raise PlanReferenceError(
                f"unbound variable {expr.name!r}{suffix}; "
                f"available columns: {sorted(env)}"
            )
        return info
    if isinstance(expr, ex.Const):
        value = expr.value
        certain = True
        if hasattr(value, "is_certain"):
            certain = bool(value.is_certain)
        return ColumnInfo(
            "", _value_type(value), nullable=value is None, certain=certain
        )
    if isinstance(expr, ex.Parameter):
        # parameters bind to arbitrary constants; nothing is provable
        return ColumnInfo("", TYPE_ANY, nullable=True, certain=True)
    if isinstance(expr, _BOOLEANS) or isinstance(expr, _COMPARISONS):
        a = infer_expression(expr.left, env, where)
        b = infer_expression(expr.right, env, where)
        # the universal domain order totalizes comparisons: never a
        # type error, only a (possibly surprising) ordering
        return ColumnInfo(
            "", TYPE_BOOL, nullable=False, certain=a.certain and b.certain
        )
    if isinstance(expr, ex.Not):
        a = infer_expression(expr.operand, env, where)
        return ColumnInfo("", TYPE_BOOL, nullable=False, certain=a.certain)
    if isinstance(expr, ex.IsNull):
        a = infer_expression(expr.operand, env, where)
        return ColumnInfo("", TYPE_BOOL, nullable=False, certain=a.certain)
    if isinstance(expr, ex.Add):
        a = infer_expression(expr.left, env, where)
        b = infer_expression(expr.right, env, where)
        pair = {a.type, b.type}
        if pair == {TYPE_STRING, TYPE_NUMBER} or pair == {TYPE_STRING, TYPE_BOOL}:
            raise PlanTypeError(
                f"cannot add {a.type} and {b.type}{suffix}: {expr!r}"
            )
        return ColumnInfo(
            "",
            unify(a.type, b.type),
            nullable=a.nullable or b.nullable,
            certain=a.certain and b.certain,
        )
    if isinstance(expr, (ex.Sub, ex.Div)):
        a = infer_expression(expr.left, env, where)
        b = infer_expression(expr.right, env, where)
        op = "subtract" if isinstance(expr, ex.Sub) else "divide"
        if TYPE_STRING in (a.type, b.type):
            raise PlanTypeError(f"cannot {op} strings{suffix}: {expr!r}")
        known = a.type == TYPE_NUMBER and b.type == TYPE_NUMBER
        return ColumnInfo(
            "",
            TYPE_NUMBER if known else TYPE_ANY,
            nullable=a.nullable or b.nullable,
            certain=a.certain and b.certain,
        )
    if isinstance(expr, ex.Mul):
        a = infer_expression(expr.left, env, where)
        b = infer_expression(expr.right, env, where)
        if a.type == TYPE_STRING and b.type == TYPE_STRING:
            raise PlanTypeError(
                f"cannot multiply two strings{suffix}: {expr!r}"
            )
        known = a.type == TYPE_NUMBER and b.type == TYPE_NUMBER
        return ColumnInfo(
            "",
            TYPE_NUMBER if known else TYPE_ANY,
            nullable=a.nullable or b.nullable,
            certain=a.certain and b.certain,
        )
    if isinstance(expr, ex.Neg):
        a = infer_expression(expr.operand, env, where)
        if a.type == TYPE_STRING:
            raise PlanTypeError(f"cannot negate a string{suffix}: {expr!r}")
        return ColumnInfo(
            "",
            TYPE_NUMBER if a.type == TYPE_NUMBER else TYPE_ANY,
            nullable=a.nullable,
            certain=a.certain,
        )
    if isinstance(expr, ex.If):
        c = infer_expression(expr.cond, env, where)
        t = infer_expression(expr.then_branch, env, where)
        e = infer_expression(expr.else_branch, env, where)
        return ColumnInfo(
            "",
            unify(t.type, e.type),
            nullable=t.nullable or e.nullable,
            certain=c.certain and t.certain and e.certain,
        )
    if isinstance(expr, ex.MakeUncertain):
        parts = [
            infer_expression(e, env, where)
            for e in (expr.lb, expr.sg, expr.ub)
        ]
        kind = parts[0].type
        for p in parts[1:]:
            kind = unify(kind, p.type)
        return ColumnInfo(
            "",
            kind,
            nullable=any(p.nullable for p in parts),
            certain=False,
        )
    # unknown expression node: inspect nothing, prove nothing
    return ColumnInfo("")


# ----------------------------------------------------------------------
# plan inference
# ----------------------------------------------------------------------
def _env(schema: Optional[Schema]) -> Env:
    return schema.mapping() if schema is not None else None


def _describe(plan: ast.Plan) -> str:
    if isinstance(plan, ast.TableRef):
        return f"TableRef({plan.name})"
    return type(plan).__name__


def _check_set_op(
    op: str, left: Optional[Schema], right: Optional[Schema]
) -> None:
    if left is None or right is None:
        return
    if len(left) != len(right):
        raise PlanCompatibilityError(
            f"{op} branches are not union-compatible: left has "
            f"{len(left)} column(s) {left.names}, right has "
            f"{len(right)} column(s) {right.names}"
        )


def infer_logical(
    plan: ast.Plan, catalog: Any = None
) -> Optional[Schema]:
    """Infer the output :class:`Schema` of a logical plan bottom-up.

    ``catalog`` is a :class:`~repro.algebra.optimizer.Statistics` (or
    any object with ``schemas`` / ``columns`` mappings), or ``None``.
    Returns ``None`` when the schema cannot be determined (unknown
    table, unknown node type, or an opaque subtree in a position that
    needs names).  Raises the :mod:`repro.analysis.errors` diagnostics
    for references, set operations, and expression types that are
    provably wrong.
    """
    if isinstance(plan, ast.TableRef):
        return table_schema(plan.name, catalog)

    if isinstance(plan, ast.Selection):
        child = infer_logical(plan.child, catalog)
        infer_expression(plan.condition, _env(child), f"Selection over {_describe(plan.child)}")
        return child

    if isinstance(plan, ast.Projection):
        child = infer_logical(plan.child, catalog)
        env = _env(child)
        out: List[ColumnInfo] = []
        for expr, name in plan.columns:
            info = infer_expression(expr, env, f"Projection column {name!r}")
            out.append(ColumnInfo(name, info.type, info.nullable, info.certain))
        return Schema(out)

    if isinstance(plan, ast.Rename):
        child = infer_logical(plan.child, catalog)
        if child is None:
            return None
        mapping = plan.mapping_dict()
        for old in mapping:
            if old not in child:
                raise PlanReferenceError(
                    f"Rename of unknown column {old!r}; "
                    f"available columns: {sorted(child.names)}"
                )
        return Schema(
            [
                ColumnInfo(mapping.get(c.name, c.name), c.type, c.nullable, c.certain)
                for c in child
            ]
        )

    if isinstance(plan, (ast.Join, ast.CrossProduct)):
        left = infer_logical(plan.left, catalog)
        right = infer_logical(plan.right, catalog)
        combined: Optional[Schema] = None
        if left is not None and right is not None:
            combined = Schema(tuple(left) + tuple(right))
        if isinstance(plan, ast.Join):
            infer_expression(plan.condition, _env(combined), "Join condition")
        return combined

    if isinstance(plan, (ast.Union, ast.Difference)):
        left = infer_logical(plan.left, catalog)
        right = infer_logical(plan.right, catalog)
        op = "union" if isinstance(plan, ast.Union) else "difference"
        _check_set_op(op, left, right)
        if left is None:
            return None
        if right is None:
            return left
        # output names follow the left branch; types/flags merge
        # positionally across both
        return Schema(
            [
                ColumnInfo(
                    a.name,
                    unify(a.type, b.type),
                    a.nullable or b.nullable,
                    a.certain and b.certain,
                )
                for a, b in zip(left, right)
            ]
        )

    if isinstance(plan, ast.Distinct):
        return infer_logical(plan.child, catalog)

    if isinstance(plan, ast.Aggregate):
        child = infer_logical(plan.child, catalog)
        env = _env(child)
        out = []
        for key in plan.group_by:
            if env is None:
                out.append(ColumnInfo(key))
                continue
            info = env.get(key)
            if info is None:
                raise PlanReferenceError(
                    f"unknown group-by column {key!r} in Aggregate; "
                    f"available columns: {sorted(env)}"
                )
            out.append(ColumnInfo(key, info.type, info.nullable, info.certain))
        for spec in plan.aggregates:
            out.append(_aggregate_output(spec, env))
        # colliding output names are tolerated (last-wins), matching the
        # executors' RowView semantics — same as duplicate join columns
        result = Schema(out)
        if plan.having is not None:
            infer_expression(plan.having, result.mapping(), "HAVING clause")
        return result

    if isinstance(plan, (ast.OrderBy, ast.TopK)):
        child = infer_logical(plan.child, catalog)
        if child is not None:
            node = "OrderBy" if isinstance(plan, ast.OrderBy) else "TopK"
            for key in plan.keys:
                if key not in child:
                    raise PlanReferenceError(
                        f"unknown order-by column {key!r} in {node}; "
                        f"available columns: {sorted(child.names)}"
                    )
        return child

    if isinstance(plan, ast.Limit):
        return infer_logical(plan.child, catalog)

    # unknown plan node (e.g. an extension subclass): opaque, not wrong
    return None


def _aggregate_output(spec: AggregateSpec, env: Env) -> ColumnInfo:
    inner: Optional[ColumnInfo] = None
    if spec.expr is not None:
        inner = infer_expression(
            spec.expr, env, f"aggregate {spec.kind}(...) AS {spec.name!r}"
        )
    if spec.kind in ("sum", "avg") and inner is not None:
        if inner.type == TYPE_STRING:
            raise PlanTypeError(
                f"aggregate {spec.kind}() over a string column "
                f"({spec.name!r}): {spec.expr!r}"
            )
    # aggregate outputs are conservatively uncertain: group membership
    # (and hence the aggregated multiset) can differ across worlds
    if spec.kind == "count":
        return ColumnInfo(spec.name, TYPE_NUMBER, nullable=False, certain=False)
    if spec.kind == "sum":
        nullable = inner.nullable if inner is not None else True
        return ColumnInfo(spec.name, TYPE_NUMBER, nullable=nullable, certain=False)
    if spec.kind == "avg":
        return ColumnInfo(spec.name, TYPE_NUMBER, nullable=True, certain=False)
    if spec.kind in ("min", "max"):
        kind = inner.type if inner is not None else TYPE_ANY
        return ColumnInfo(spec.name, kind, nullable=True, certain=False)
    return ColumnInfo(spec.name, TYPE_ANY, nullable=True, certain=False)
