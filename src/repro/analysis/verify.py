"""Plan well-formedness verification for the logical and physical IRs.

:func:`verify_logical` runs typed schema inference
(:func:`repro.analysis.schema.infer_logical`) over a logical plan and
additionally checks that every :class:`~repro.algebra.ast.TableRef`
resolves against a non-empty catalog.  :func:`verify_bound` checks the
plan's :class:`~repro.core.expressions.Parameter` keys are complete
against a binding at execute time.  :func:`verify_physical` walks a
lowered :class:`~repro.exec.physical.PhysNode` tree and checks the
physical-only invariants: engine-legal operator sets (the AU engines'
non-linear fragment — ``Distinct`` / ``Difference`` / ``Aggregate`` /
top-k — must be closed under :class:`~repro.exec.physical.TupleFallback`
boundaries), :class:`~repro.exec.physical.Exchange` / partial-aggregate
placement, exactly one :class:`~repro.exec.physical.ParallelScan` per
parallel region, resolved ``Cpr`` bucket budgets, and per-node schema
consistency (join keys resolve on the correct side, projections and
renames reference real columns, concatenated branches stay
union-compatible).

Everything here is read-only and catalog-permissive: a subtree whose
schema cannot be known (table missing from statistics) disables the
downstream name checks rather than failing them.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional, Sequence, Set, Union

from ..algebra import ast
from ..core.expressions import Expression
from .errors import (
    PlanCompatibilityError,
    PlanReferenceError,
)
from .schema import (
    ColumnInfo,
    Schema,
    infer_expression,
    infer_logical,
    table_schema,
    unify,
)

__all__ = [
    "verify_logical",
    "verify_bound",
    "verify_physical",
    "verify_delta",
    "collect_plan_parameters",
    "infer_physical",
]


# ----------------------------------------------------------------------
# logical plans
# ----------------------------------------------------------------------
def collect_plan_parameters(plan: ast.Plan) -> List[Any]:
    """Parameter keys mentioned anywhere in ``plan``, first-seen order.

    (A local walk rather than an import of :mod:`repro.session`, which
    imports the optimizer, which imports this package.)
    """
    out: List[Any] = []

    def expr(e: Optional[Expression]) -> None:
        if e is not None:
            for key in e.parameters():
                if key not in out:
                    out.append(key)

    for node in plan.walk():
        if isinstance(node, ast.Selection):
            expr(node.condition)
        elif isinstance(node, ast.Projection):
            for e, _name in node.columns:
                expr(e)
        elif isinstance(node, ast.Join):
            expr(node.condition)
        elif isinstance(node, ast.Aggregate):
            for spec in node.aggregates:
                expr(spec.expr)
            expr(node.having)
    return out


def _check_tables(plan: ast.Plan, catalog: Any) -> None:
    schemas = getattr(catalog, "schemas", None)
    if not schemas:
        # empty or absent catalog: nothing is provably missing — leave
        # unknown-table reporting to the storage layer at run time
        return
    for node in plan.walk():
        if isinstance(node, ast.TableRef) and node.name not in schemas:
            raise PlanReferenceError(
                f"table {node.name!r} not found in catalog; "
                f"known tables: {sorted(schemas)}"
            )


def verify_logical(
    plan: ast.Plan,
    catalog: Any = None,
    *,
    expect_parameters: bool = True,
) -> Optional[Schema]:
    """Verify a logical plan; returns its inferred :class:`Schema`.

    Checks: every ``TableRef`` resolves (against a non-empty
    ``catalog``), every column reference resolves, set operations are
    union-compatible, ``Aggregate`` group-by/output columns are
    consistent, and expressions are not provably ill-typed.  With
    ``expect_parameters=False`` the plan must also be parameter-free
    (a fully-bound plan handed to an executor).  Raises a
    :class:`~repro.analysis.errors.PlanVerificationError` subclass on
    the first violation; returns ``None`` when the schema is unknowable
    (permissive).
    """
    _check_tables(plan, catalog)
    schema = infer_logical(plan, catalog)
    if not expect_parameters:
        keys = collect_plan_parameters(plan)
        if keys:
            raise PlanReferenceError(
                f"plan still contains unbound parameter(s) "
                f"{sorted(keys, key=str)} at a point where all bindings "
                "must be resolved"
            )
    return schema


def verify_bound(
    plan: ast.Plan, bindings: Optional[Mapping[Any, Any]]
) -> None:
    """Check every parameter key of ``plan`` has a value in ``bindings``."""
    keys = collect_plan_parameters(plan)
    have = set(bindings) if bindings else set()
    missing = [k for k in keys if k not in have]
    if missing:
        raise PlanReferenceError(
            f"unbound parameter(s) {sorted(missing, key=str)}; "
            f"bound keys: {sorted(have, key=str)}"
        )


# ----------------------------------------------------------------------
# delta plans (incremental view maintenance, repro.ivm)
# ----------------------------------------------------------------------
def verify_delta(
    delta: Any, dplan: Any = None, catalog: Any = None
) -> Optional[Schema]:
    """Verify a derived delta plan; returns the view's inferred schema.

    ``delta`` is a :class:`repro.algebra.optimizer.DeltaPlan` (and
    ``dplan``, when given, its lowered
    :class:`repro.exec.physical.DeltaPhysical`, whose component plans
    were already physically verified during lowering).  Checks the
    maintenance-specific invariants on top of per-plan verification:

    * the view and every maintained segment are parameter-free and
      logically well-formed against ``catalog``;
    * every *named* segment (one the tail reads back as a synthetic
      table) has a known, duplicate-free schema — it must be
      materializable as a base relation;
    * **the schema of the delta ≡ the schema of the view**: for a
      ``linear`` view the root segment's schema, for an ``aggregate``
      view the finalized ``group_by + aggregate`` names, and for a
      ``refresh`` view the tail's schema (inferred over the catalog
      extended with the segment schemas) must all match the view plan's
      own output schema by name — otherwise folding maintained state
      into the view result would silently misalign columns.
    """
    view_schema = verify_logical(delta.view, catalog, expect_parameters=False)
    view_names = tuple(view_schema.names) if view_schema is not None else None

    def check_names(got: Optional[Sequence[str]], what: str) -> None:
        if view_names is None or got is None:
            return
        if tuple(got) != view_names:
            raise PlanCompatibilityError(
                f"delta {what} schema {tuple(got)} does not match the "
                f"view schema {view_names}: maintained state would "
                "misalign columns"
            )

    seg_schemas: dict[str, Schema] = {}
    for seg in delta.segments:
        schema = verify_logical(seg.plan, catalog, expect_parameters=False)
        if seg.name:
            if schema is None:
                raise PlanCompatibilityError(
                    f"maintained segment {seg.name!r} has no inferable "
                    "schema; it cannot be materialized as a base table"
                )
            if len({c.name for c in schema}) != len(schema):
                raise PlanCompatibilityError(
                    f"maintained segment {seg.name!r} has duplicate "
                    f"attribute names {schema.names}"
                )
            seg_schemas[seg.name] = schema

    if delta.kind == "linear":
        root = verify_logical(
            delta.segments[0].plan, catalog, expect_parameters=False
        )
        check_names(root.names if root is not None else None, "segment")
    elif delta.kind == "aggregate":
        agg = delta.aggregate
        check_names(
            tuple(agg.group_by) + tuple(s.name for s in agg.aggregates),
            "aggregate",
        )
    else:
        tail_schema = verify_logical(
            delta.tail,
            _SegmentCatalog(catalog, seg_schemas),
            expect_parameters=False,
        )
        check_names(
            tail_schema.names if tail_schema is not None else None, "tail"
        )
    return view_schema


class _SegmentCatalog:
    """A catalog view that adds the maintained segments' schemas, so the
    non-linear tail's synthetic ``__ivm_seg*`` tables verify like base
    tables."""

    def __init__(self, base: Any, segments: Mapping[str, Schema]) -> None:
        self.schemas = dict(getattr(base, "schemas", None) or {})
        self.columns = dict(getattr(base, "columns", None) or {})
        self.cardinalities = dict(getattr(base, "cardinalities", None) or {})
        for name, schema in segments.items():
            self.schemas[name] = tuple(schema.names)
            self.cardinalities.setdefault(name, 0)


# ----------------------------------------------------------------------
# physical plans
# ----------------------------------------------------------------------
def _phys() -> Any:
    # lazy: repro.exec.physical imports the optimizer, which imports
    # this package — resolving at call time breaks the cycle
    from ..exec import physical

    return physical


#: physical operators the AU engines may not contain — their logical
#: counterparts (the non-linear fragment) must appear as TupleFallback
_AU_FORBIDDEN = ("HashAggregate", "HashDistinct", "TopK", "Limit")
#: operators only the AU lowering may produce
_DET_FORBIDDEN = ("CompressedJoin", "AUPartialAggregate")

_MERGE_KINDS = ("concat", "aggregate", "topk", "limit", "distinct", "au_aggregate", "au_topk")
#: merge kinds whose partial/merge protocol is engine-specific; "concat"
#: is the shared linear-region merge and legal for both engines
_DET_MERGE_KINDS = ("aggregate", "topk", "limit", "distinct")
_AU_MERGE_KINDS = ("au_aggregate", "au_topk")

#: comparison kinds a chunk-skip constraint may carry — the ops
#: :func:`repro.db.chunks.derive_skip` knows zone-map rules for
_SKIP_OPS = ("le", "lt", "ge", "gt", "eq", "ne", "isnull", "notnull")

#: distinguishes "config has no chunk_size attribute" (older configs,
#: ad-hoc test doubles — skip the alignment check) from an explicit None
_UNSET = object()


def _node_name(node: Any) -> str:
    return type(node).__name__


def infer_physical(pplan: Any, catalog: Any = None) -> Optional[Schema]:
    """Bottom-up :class:`Schema` of a physical plan (``None`` = unknown).

    Shares the logical inference rules through each node's semantics;
    raises the same reference/compatibility/type diagnostics.
    """
    phys = _phys()

    def env(schema: Optional[Schema]) -> Optional[Mapping[str, ColumnInfo]]:
        return schema.mapping() if schema is not None else None

    def join_schema(
        left: Optional[Schema], right: Optional[Schema]
    ) -> Optional[Schema]:
        if left is None or right is None:
            return None
        return Schema(tuple(left) + tuple(right))

    def check_pair(
        pair: Any, left: Optional[Schema], right: Optional[Schema], where: str
    ) -> None:
        a, b = pair
        if left is not None and a not in left:
            raise PlanReferenceError(
                f"{where} key {a!r} not in left input columns "
                f"{sorted(left.names)}"
            )
        if right is not None and b not in right:
            raise PlanReferenceError(
                f"{where} key {b!r} not in right input columns "
                f"{sorted(right.names)}"
            )

    def visit(node: Any) -> Optional[Schema]:
        if isinstance(node, phys.ParallelScan) or isinstance(node, phys.Scan):
            return table_schema(node.table, catalog)
        if isinstance(node, phys.FusedSelectProject):
            child = visit(node.child)
            if node.condition is not None:
                infer_expression(
                    node.condition, env(child), "FusedSelectProject filter"
                )
            if node.columns is None:
                return child
            out = []
            for expr, name in node.columns:
                info = infer_expression(
                    expr, env(child), f"FusedSelectProject column {name!r}"
                )
                out.append(ColumnInfo(name, info.type, info.nullable, info.certain))
            return Schema(out)
        if isinstance(node, phys.Rename):
            child = visit(node.child)
            if child is None:
                return None
            for old in node.mapping:
                if old not in child:
                    raise PlanReferenceError(
                        f"Rename of unknown column {old!r}; available "
                        f"columns: {sorted(child.names)}"
                    )
            return Schema(
                [
                    ColumnInfo(
                        node.mapping.get(c.name, c.name),
                        c.type,
                        c.nullable,
                        c.certain,
                    )
                    for c in child
                ]
            )
        if isinstance(node, phys.HashJoin):
            left, right = visit(node.left), visit(node.right)
            for pair in node.eq_pairs:
                check_pair(pair, left, right, "HashJoin equi")
            combined = join_schema(left, right)
            infer_expression(node.condition, env(combined), "HashJoin condition")
            return combined
        if isinstance(node, phys.CompressedJoin):
            left, right = visit(node.left), visit(node.right)
            check_pair(node.pair, left, right, "CompressedJoin equi")
            combined = join_schema(left, right)
            infer_expression(
                node.condition, env(combined), "CompressedJoin condition"
            )
            return combined
        if isinstance(node, phys.NLJoin):
            left, right = visit(node.left), visit(node.right)
            combined = join_schema(left, right)
            if node.condition is not None:
                infer_expression(node.condition, env(combined), "NLJoin condition")
            return combined
        if isinstance(node, phys.HashAggregate):
            child = visit(node.child)
            logical = ast.Aggregate(
                ast.TableRef("?"),
                node.group_by,
                node.aggregates,
                None if node.partial else node.having,
            )
            return _aggregate_like(logical, child)
        if isinstance(node, phys.HashDistinct):
            return visit(node.child)
        if isinstance(node, phys.TopK):
            child = visit(node.child)
            _check_keys(node.keys, child, "TopK")
            return child
        if isinstance(node, phys.Limit):
            return visit(node.child)
        if isinstance(node, phys.Concat):
            left, right = visit(node.left), visit(node.right)
            if left is not None and right is not None and len(left) != len(right):
                raise PlanCompatibilityError(
                    f"Concat (union) branches are not union-compatible: "
                    f"left {left.names}, right {right.names}"
                )
            if left is None or right is None:
                return left or right
            return Schema(
                [
                    ColumnInfo(
                        a.name,
                        unify(a.type, b.type),
                        a.nullable or b.nullable,
                        a.certain and b.certain,
                    )
                    for a, b in zip(left, right)
                ]
            )
        if isinstance(node, phys.TupleFallback):
            inputs = [visit(c) for c in node.inputs]
            return _fallback_schema(node, inputs)
        if isinstance(node, phys.AUPartialAggregate):
            child = visit(node.child)
            logical = ast.Aggregate(
                ast.TableRef("?"), node.group_by, node.aggregates, None
            )
            return _aggregate_like(logical, child)
        if isinstance(node, phys.Exchange):
            if node.merge in _AU_MERGE_KINDS and node.final is not None:
                # the AU merge finalizes the original serial operator's
                # output shape (its child carries partial state)
                return visit(node.final)
            return visit(node.child)
        return None

    def _check_keys(
        keys: Sequence[str], schema: Optional[Schema], where: str
    ) -> None:
        if schema is None:
            return
        for key in keys:
            if key not in schema:
                raise PlanReferenceError(
                    f"unknown column {key!r} in {where}; available "
                    f"columns: {sorted(schema.names)}"
                )

    def _aggregate_like(
        logical: ast.Aggregate, child: Optional[Schema]
    ) -> Optional[Schema]:
        # reuse the logical Aggregate rules against the physical child's
        # schema by substituting an opaque leaf for the child
        from .schema import _aggregate_output  # shared internals

        child_env = env(child)
        out = []
        for key in logical.group_by:
            if child_env is None:
                out.append(ColumnInfo(key))
                continue
            info = child_env.get(key)
            if info is None:
                raise PlanReferenceError(
                    f"unknown group-by column {key!r} in HashAggregate; "
                    f"available columns: {sorted(child_env)}"
                )
            out.append(ColumnInfo(key, info.type, info.nullable, info.certain))
        for spec in logical.aggregates:
            out.append(_aggregate_output(spec, child_env))
        # colliding output names are last-wins, as everywhere else
        schema = Schema(out)
        if logical.having is not None:
            infer_expression(logical.having, schema.mapping(), "HAVING clause")
        return schema

    def _fallback_schema(
        node: Any, inputs: List[Optional[Schema]]
    ) -> Optional[Schema]:
        logical = node.logical
        if node.kind == "difference":
            left = inputs[0] if inputs else None
            right = inputs[1] if len(inputs) > 1 else None
            if left is not None and right is not None and len(left) != len(right):
                raise PlanCompatibilityError(
                    "TupleFallback[difference] branches are not "
                    f"union-compatible: left {left.names}, right {right.names}"
                )
            return left
        child = inputs[0] if inputs else None
        if node.kind == "distinct":
            return child
        if node.kind == "aggregate" and isinstance(logical, ast.Aggregate):
            return _aggregate_like(logical, child)
        if node.kind == "topk" and isinstance(logical, ast.TopK):
            _check_keys(logical.keys, child, "TupleFallback[topk]")
            return child
        return child

    return visit(pplan)


def verify_physical(
    pplan: Any,
    catalog: Any = None,
    config: Any = None,
) -> Optional[Schema]:
    """Verify a lowered physical plan; returns its inferred schema.

    ``config`` is the :class:`~repro.exec.physical.PhysicalConfig` the
    plan was lowered with (``None`` = check only engine-independent
    invariants).  Checks, beyond :func:`infer_physical`'s per-node
    schema consistency:

    * engine-legal operators — an AU plan may not contain the
      deterministic non-linear operators (``HashAggregate`` /
      ``HashDistinct`` / ``TopK`` / ``Limit``): its non-linear fragment
      must be closed under ``TupleFallback`` boundaries; a
      deterministic plan may not contain ``CompressedJoin`` or
      ``AUPartialAggregate``;
    * ``Exchange`` placement — a known, engine-matching merge kind
      (the SG-combine kinds ``au_aggregate`` / ``au_topk`` only in AU
      plans, the det partial-state kinds only in det plans),
      merge-specific child and ``final`` operator shapes, partial
      ``HashAggregate`` only directly under
      ``Exchange(merge="aggregate")`` with its ``having`` deferred to
      the final operator, ``AUPartialAggregate`` only directly under
      ``Exchange(merge="au_aggregate")``, and **no ``TupleFallback``
      inside any Exchange region** — the non-linear tuple fragment is
      not partition-distributive and must stay serial;
    * parallel regions — exactly one ``ParallelScan`` per ``Exchange``
      region with matching ``partitions``; no ``ParallelScan`` outside a
      region; no nested ``Exchange``;
    * ``Cpr`` budgets — every ``CompressedJoin`` / bucketed
      ``TupleFallback`` carries a resolved positive bucket count;
    * chunked-storage invariants — scan ``chunk_size`` values are legal,
      a ``ParallelScan``'s ``chunk_size`` matches the config it was
      lowered with (so Exchange morsels align with the table's chunk
      boundaries), and chunk-skip predicates use only the supported
      comparison kinds over zone-mapped (real) columns of the scanned
      table, never on a scan with chunking disabled;
    * ``TupleFallback`` shape — known ``kind``, input arity, and a
      logical node of the matching class.
    """
    phys = _phys()
    engine = getattr(config, "engine", None)

    au_forbidden = tuple(getattr(phys, n) for n in _AU_FORBIDDEN)
    fallback_arity = {"difference": 2, "distinct": 1, "aggregate": 1, "topk": 1}
    fallback_logical = {
        "difference": ast.Difference,
        "distinct": ast.Distinct,
        "aggregate": ast.Aggregate,
        "topk": ast.TopK,
    }

    def visit(node: Any, in_region: bool) -> None:
        name = _node_name(node)
        if engine == "au" and isinstance(node, au_forbidden):
            raise PlanCompatibilityError(
                f"{name} is not a legal AU operator: the AU engines' "
                "non-linear fragment must run through TupleFallback "
                "boundaries"
            )
        if engine == "det" and isinstance(node, phys.CompressedJoin):
            raise PlanCompatibilityError(
                "CompressedJoin (Cpr) in a deterministic plan: "
                "compression only applies to AU annotations"
            )
        if engine == "det" and isinstance(node, phys.AUPartialAggregate):
            raise PlanCompatibilityError(
                "AUPartialAggregate in a deterministic plan: SG-combine "
                "partial states only exist in the AU lowering"
            )
        if (
            in_region
            and isinstance(node, phys.TupleFallback)
            and any(isinstance(n, phys.ParallelScan) for n in node.walk())
        ):
            # a fallback on a partition-invariant branch is evaluated
            # once, serially, in the parent — legal; one fed by the
            # region's morsels would see partial inputs
            raise PlanCompatibilityError(
                f"TupleFallback[{node.kind}] inside an Exchange region "
                "on the partitioned spine: the non-linear tuple "
                "fragment is not partition-distributive and must stay "
                "serial"
            )
        if isinstance(node, phys.CompressedJoin):
            if not isinstance(node.buckets, int) or node.buckets < 1:
                raise PlanCompatibilityError(
                    f"CompressedJoin has unresolved Cpr budget "
                    f"{node.buckets!r}; lowering must fix a positive "
                    "bucket count"
                )
        if isinstance(node, phys.TupleFallback):
            if node.kind not in fallback_arity:
                raise PlanCompatibilityError(
                    f"unknown TupleFallback kind {node.kind!r}"
                )
            if engine == "det" and node.kind != "difference":
                raise PlanCompatibilityError(
                    f"TupleFallback[{node.kind}] in a deterministic plan: "
                    "only bag difference falls back to tuple operators"
                )
            if len(node.inputs) != fallback_arity[node.kind]:
                raise PlanCompatibilityError(
                    f"TupleFallback[{node.kind}] expects "
                    f"{fallback_arity[node.kind]} input(s), has "
                    f"{len(node.inputs)}"
                )
            expected = fallback_logical[node.kind]
            if not isinstance(node.logical, expected):
                raise PlanCompatibilityError(
                    f"TupleFallback[{node.kind}] carries a "
                    f"{_node_name(node.logical)} logical node; expected "
                    f"{expected.__name__}"
                )
            if node.buckets is not None and (
                not isinstance(node.buckets, int) or node.buckets < 1
            ):
                raise PlanCompatibilityError(
                    f"TupleFallback[{node.kind}] has unresolved Cpr "
                    f"budget {node.buckets!r}"
                )
        if isinstance(node, phys.HashAggregate) and node.partial:
            # reachable only via Exchange's special-cased recursion below
            raise PlanCompatibilityError(
                "partial HashAggregate without a merging Exchange: "
                "partial aggregation states are only legal directly "
                'under Exchange(merge="aggregate")'
            )
        if isinstance(node, phys.AUPartialAggregate):
            # reachable only via Exchange's special-cased recursion below
            raise PlanCompatibilityError(
                "AUPartialAggregate without a merging Exchange: "
                "SG-combine partial states are only legal directly "
                'under Exchange(merge="au_aggregate")'
            )
        if isinstance(node, (phys.Scan, phys.ParallelScan)):
            _check_scan_storage(node)
        if isinstance(node, phys.ParallelScan):
            if not in_region:
                raise PlanCompatibilityError(
                    "ParallelScan outside an Exchange region: morsel "
                    "scans need a merge point"
                )
            return
        if isinstance(node, phys.Exchange):
            _check_exchange(node, in_region)
            return
        for child in node.children():
            visit(child, in_region)

    def _check_scan_storage(node: Any) -> None:
        # lazy for the same cycle reason as _phys(): repro.db.chunks
        # triggers repro.exec, which imports the optimizer, which
        # imports this package
        from ..db.chunks import ChunkSkipPredicate, resolve_chunk_size

        name = _node_name(node)
        try:
            size = resolve_chunk_size(node.chunk_size)
        except ValueError as exc:
            raise PlanCompatibilityError(
                f"{name} on {node.table!r}: {exc}"
            ) from None
        cfg_size = getattr(config, "chunk_size", _UNSET)
        if (
            cfg_size is not _UNSET
            and isinstance(node, phys.ParallelScan)
            and node.chunk_size != cfg_size
        ):
            raise PlanCompatibilityError(
                f"ParallelScan on {node.table!r} carries chunk_size "
                f"{node.chunk_size!r} but the plan was lowered with "
                f"config.chunk_size {cfg_size!r}: Exchange morsels would "
                "not align with the table's chunk boundaries"
            )
        skip = getattr(node, "skip", None)
        if skip is None:
            return
        if not isinstance(skip, ChunkSkipPredicate):
            raise PlanCompatibilityError(
                f"{name} on {node.table!r} carries a non-predicate skip "
                f"object {type(skip).__name__}"
            )
        if size == 0:
            raise PlanCompatibilityError(
                f"{name} on {node.table!r} carries a chunk-skip predicate "
                "but chunked storage is disabled (chunk_size=0): the "
                "predicate could never be evaluated"
            )
        schema = table_schema(node.table, catalog)
        for c in skip.constraints:
            if c.op not in _SKIP_OPS:
                raise PlanCompatibilityError(
                    f"chunk-skip constraint {c.text!r} on {node.table!r} "
                    f"uses unknown comparison {c.op!r}; zone maps support "
                    f"{list(_SKIP_OPS)}"
                )
            if schema is not None and c.column not in schema:
                raise PlanReferenceError(
                    f"chunk-skip constraint references {c.column!r}, "
                    f"which is not a zone-mapped column of "
                    f"{node.table!r}; available columns: "
                    f"{sorted(schema.names)}"
                )

    def _check_exchange(node: Any, in_region: bool) -> None:
        if in_region:
            raise PlanCompatibilityError(
                "nested Exchange: parallel regions do not nest"
            )
        if node.merge not in _MERGE_KINDS:
            raise PlanCompatibilityError(
                f"unknown Exchange merge kind {node.merge!r}; "
                f"expected one of {list(_MERGE_KINDS)}"
            )
        if engine == "au" and node.merge in _DET_MERGE_KINDS:
            raise PlanCompatibilityError(
                f'Exchange(merge="{node.merge}") in an AU plan: AU '
                "regions merge through the SG-combine-aware kinds "
                f"{list(_AU_MERGE_KINDS)} (or concat)"
            )
        if engine == "det" and node.merge in _AU_MERGE_KINDS:
            raise PlanCompatibilityError(
                f'Exchange(merge="{node.merge}") in a deterministic '
                "plan: SG-combine merges only exist in the AU lowering"
            )
        if not isinstance(node.partitions, int) or node.partitions < 2:
            raise PlanCompatibilityError(
                f"Exchange with {node.partitions!r} partitions: a "
                "parallel region needs at least 2"
            )
        parallelism = getattr(config, "parallelism", None)
        if parallelism is not None and node.partitions > parallelism:
            # adaptive morsel sizing may choose *fewer* partitions than
            # config.parallelism (small driver tables), never more
            raise PlanCompatibilityError(
                f"Exchange partitions {node.partitions} exceed "
                f"config.parallelism {parallelism}"
            )
        child, final = node.child, node.final
        if node.merge == "concat":
            if final is not None:
                raise PlanCompatibilityError(
                    'Exchange(merge="concat") must not carry a final '
                    f"operator, has {_node_name(final)}"
                )
        elif node.merge in _AU_MERGE_KINDS:
            fallback_kind = "aggregate" if node.merge == "au_aggregate" else "topk"
            if not isinstance(final, phys.TupleFallback) or final.kind != fallback_kind:
                raise PlanCompatibilityError(
                    f'Exchange(merge="{node.merge}") requires the original '
                    f"serial TupleFallback[{fallback_kind}] as its final "
                    "operator, has "
                    f"{_node_name(final) if final is not None else None!r}"
                )
            if node.merge == "au_aggregate" and not isinstance(
                child, phys.AUPartialAggregate
            ):
                raise PlanCompatibilityError(
                    'Exchange(merge="au_aggregate") requires an '
                    "AUPartialAggregate child computing per-partition "
                    f"SG-combine state, has {_node_name(child)}"
                )
            if node.merge == "au_topk" and isinstance(child, phys.TupleFallback):
                raise PlanCompatibilityError(
                    'Exchange(merge="au_topk") takes the bare linear '
                    "region as its child (exact top-k bounds need the "
                    "full concatenation at the merge), not a "
                    "TupleFallback"
                )
        else:
            shapes = {
                "aggregate": phys.HashAggregate,
                "topk": phys.TopK,
                "limit": phys.Limit,
                "distinct": phys.HashDistinct,
            }
            shape = shapes[node.merge]
            if not isinstance(child, shape):
                raise PlanCompatibilityError(
                    f'Exchange(merge="{node.merge}") requires a '
                    f"{shape.__name__} child computing per-partition "
                    f"state, has {_node_name(child)}"
                )
            if final is None or not isinstance(final, shape):
                raise PlanCompatibilityError(
                    f'Exchange(merge="{node.merge}") requires a '
                    f"{shape.__name__} final operator, has "
                    f"{_node_name(final) if final is not None else None!r}"
                )
            if node.merge == "aggregate":
                if not child.partial:
                    raise PlanCompatibilityError(
                        'Exchange(merge="aggregate") child must be a '
                        "partial HashAggregate"
                    )
                if child.having is not None:
                    raise PlanCompatibilityError(
                        "partial HashAggregate must defer HAVING to the "
                        "Exchange's final operator"
                    )
                if final.partial:
                    raise PlanCompatibilityError(
                        'Exchange(merge="aggregate") final operator must '
                        "be the non-partial HashAggregate"
                    )
        # walk the region body; `final` shares the pre-parallel subtree
        # with `child` (it is the original serial operator), so it is
        # checked shallowly above and never recursed into
        region_root = child
        if node.merge == "aggregate" and isinstance(child, phys.HashAggregate):
            # the partial aggregate itself is legal here; descend past it
            region_root = child.child
        elif node.merge == "au_aggregate" and isinstance(
            child, phys.AUPartialAggregate
        ):
            region_root = child.child
        elif node.merge in ("topk", "limit", "distinct"):
            region_root = child.child
        scans = [
            n
            for n in region_root.walk()
            if isinstance(n, phys.ParallelScan)
        ]
        if len(scans) != 1:
            raise PlanCompatibilityError(
                f"Exchange region must contain exactly one ParallelScan, "
                f"found {len(scans)}"
            )
        if scans[0].partitions != node.partitions:
            raise PlanCompatibilityError(
                f"ParallelScan partitions {scans[0].partitions} do not "
                f"match Exchange partitions {node.partitions}"
            )
        visit(region_root, True)

    visit(pplan, False)
    if engine is not None and engine not in ("det", "au"):
        raise PlanCompatibilityError(f"unknown engine {engine!r}")
    return infer_physical(pplan, catalog)
