"""Diagnostic exception hierarchy of the plan verifier.

Every verifier diagnostic derives from :class:`PlanVerificationError`,
so ``except PlanVerificationError`` catches the whole family.  The
concrete classes additionally subclass the *builtin* exception the
pre-verifier runtime raised for the same mistake (``KeyError`` for an
unresolved reference, ``ValueError`` for incompatible set-operation
branches, ``TypeError`` for ill-typed arithmetic): existing callers and
tests that catch the builtin keep working — they just see the error at
prepare time, with a one-line diagnostic naming the node and column,
instead of deep inside an executor.
"""

from __future__ import annotations

__all__ = [
    "PlanVerificationError",
    "PlanReferenceError",
    "PlanCompatibilityError",
    "PlanTypeError",
    "SemiringSafetyError",
]


class PlanVerificationError(Exception):
    """A logical or physical plan failed static verification."""


class PlanReferenceError(PlanVerificationError, KeyError):
    """A column, table, or join key does not resolve."""

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument; diagnostics are prose
        return str(self.args[0]) if self.args else ""


class PlanCompatibilityError(PlanVerificationError, ValueError):
    """Set-operation branches or merge operators are incompatible."""


class PlanTypeError(PlanVerificationError, TypeError):
    """An expression would raise a ``TypeError`` in every world."""


class SemiringSafetyError(PlanVerificationError):
    """An AU plan crossed a rewrite declared safe only for bag semantics
    (or a rewrite fired without a safety declaration at all)."""
