"""Semiring-safety lint: per-rewrite semantics declarations.

Every optimizer rewrite in :mod:`repro.algebra.optimizer` records the
name of the rule it applied into a *trace*.  This module is the
registry of those rules: each declares which annotation semantics it
preserves — plain bag multiplicities (``"bag"``), the paper's AU
bound-preserving semiring (``"au"``), or both.  A plan destined for an
AU engine that crossed a bag-only rewrite (for example pushing a
selection through ``Distinct``, which commutes for multiplicities but
not for SG-combined AU annotations) is rejected by
:func:`check_semiring_safety` with a
:class:`~repro.analysis.errors.SemiringSafetyError`.

The registry is deliberately closed: a rewrite that fires without a
declaration here is itself an error.  Adding a rewrite to the optimizer
therefore *forces* a safety declaration — see
``docs/static_analysis.md`` for the checklist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from .errors import SemiringSafetyError

__all__ = [
    "SEMANTICS",
    "RewriteRule",
    "REWRITE_RULES",
    "rule_allowed",
    "check_semiring_safety",
]

#: The semantics a plan can be verified against: ``"bag"`` for the
#: deterministic engines, ``"au"`` for the AU engines, ``"both"`` when
#: the optimized plan must stay valid for either (the default for
#: direct :func:`~repro.algebra.optimizer.optimize` callers).
SEMANTICS = ("bag", "au", "both")


@dataclass(frozen=True)
class RewriteRule:
    """A declared optimizer rewrite and the semantics it preserves."""

    name: str
    bag_safe: bool
    au_safe: bool
    note: str = ""

    def preserves(self, semantics: str) -> bool:
        if semantics == "bag":
            return self.bag_safe
        if semantics == "au":
            return self.au_safe
        return self.bag_safe and self.au_safe


_RULES: Tuple[RewriteRule, ...] = (
    RewriteRule(
        "selection-pushdown",
        bag_safe=True,
        au_safe=True,
        note="σ commutes with σ/π/ρ/∪ and distributes into joins in any "
        "commutative semiring",
    ),
    RewriteRule(
        "join-promotion",
        bag_safe=True,
        au_safe=True,
        note="σ_p(R × S) ≡ R ⋈_p S by definition",
    ),
    RewriteRule(
        "aggregate-pushdown",
        bag_safe=True,
        au_safe=True,
        note="group-preserving σ over certain group-by columns only; the "
        "rewrite itself checks uncertain_fraction == 0.0",
    ),
    RewriteRule(
        "distinct-pushdown",
        bag_safe=True,
        au_safe=False,
        note="σ_p(δ(R)) ≡ δ(σ_p(R)) holds for multiplicities but not for "
        "SG-combined AU annotations (δ merges ranges before p filters)",
    ),
    RewriteRule(
        "difference-pushdown",
        bag_safe=True,
        au_safe=False,
        note="σ_p(R − S) ≡ σ_p(R) − S for bag multiplicities "
        "(max(0, R(t) − S(t)) is 0 either way when p rejects t); AU "
        "difference combines bounds before filtering",
    ),
    RewriteRule(
        "join-reorder-dp",
        bag_safe=True,
        au_safe=True,
        note="⋈ is associative/commutative in any commutative semiring",
    ),
    RewriteRule(
        "join-reorder-greedy",
        bag_safe=True,
        au_safe=True,
        note="same algebra as join-reorder-dp, heuristic order",
    ),
    RewriteRule(
        "topk-fusion",
        bag_safe=True,
        au_safe=True,
        note="ORDER BY + LIMIT to TopK changes evaluation, not results",
    ),
    RewriteRule(
        "projection-pruning",
        bag_safe=True,
        au_safe=True,
        note="narrowing π below width-insensitive operators",
    ),
    RewriteRule(
        "delta-derivation",
        bag_safe=True,
        au_safe=True,
        note="incremental maintenance: both semirings distribute over "
        "union, so single-table deltas through the linear fragment are "
        "exact and the non-linear tail re-executes unchanged (repro.ivm)",
    ),
)

#: name → :class:`RewriteRule` for every declared rewrite.
REWRITE_RULES: Dict[str, RewriteRule] = {r.name: r for r in _RULES}


def rule_allowed(name: str, semantics: str) -> bool:
    """Is rewrite ``name`` declared safe for ``semantics``?

    Unknown names are *not* allowed — firing an undeclared rewrite is a
    lint error in itself.
    """
    rule = REWRITE_RULES.get(name)
    return rule is not None and rule.preserves(semantics)


def check_semiring_safety(trace: Sequence[str], semantics: str) -> None:
    """Reject a rewrite trace containing a rule unsafe for ``semantics``.

    ``trace`` is the ordered list of rule names the optimizer recorded;
    ``semantics`` the annotation semantics the plan will execute under.
    Raises :class:`SemiringSafetyError` naming the offending rule.
    """
    if semantics not in SEMANTICS:
        raise SemiringSafetyError(
            f"unknown semantics {semantics!r}; expected one of {list(SEMANTICS)}"
        )
    for name in trace:
        rule = REWRITE_RULES.get(name)
        if rule is None:
            raise SemiringSafetyError(
                f"rewrite {name!r} fired without a safety declaration; "
                "add it to repro.analysis.lint.REWRITE_RULES"
            )
        if not rule.preserves(semantics):
            raise SemiringSafetyError(
                f"rewrite {name!r} is not {semantics}-safe: {rule.note}"
            )
