"""``repro.analysis`` — static analysis over the logical and physical IRs.

Three passes, all compile-time, no execution:

* **Typed schema inference** (:mod:`repro.analysis.schema`) — a
  :class:`Schema` (column name → inferred type, nullability, and an
  annotation-certainty flag) computed bottom-up for every logical
  :class:`~repro.algebra.ast.Plan` node and every
  :class:`~repro.exec.physical.PhysNode`, replacing ad-hoc column
  lookups with one authority.
* **Plan well-formedness verification**
  (:mod:`repro.analysis.verify`) — :func:`verify_logical` /
  :func:`verify_physical` check that column references resolve,
  set operations are union-compatible, ``Aggregate`` group-by and
  output columns are consistent, parameter bindings are complete
  at execute time, ``Exchange`` / partial-aggregate placement is
  legal, ``TupleFallback`` boundaries close the AU engines'
  non-linear fragment, and ``Cpr`` budgets are resolved.
* **Semiring-safety lint** (:mod:`repro.analysis.lint`) — every
  optimizer rewrite declares the semantics it preserves (bag-only
  vs AU-safe); :func:`check_semiring_safety` rejects an AU plan
  that crossed a bag-only rewrite.

Verification is wired behind one process-wide switch (plus the
per-connection ``verify=`` knob of :class:`repro.session.Connection`
and the CLI ``--verify-plans`` flag): :func:`set_verification` /
:func:`verification_enabled` / the :func:`verified` context manager.
The environment variable ``REPRO_VERIFY_PLANS=1`` turns it on at
import time (how CI runs the whole fuzzer corpus through the
verifier).  When enabled, :func:`repro.algebra.optimizer.optimize`
re-verifies the plan after *each individual rewrite pass* and
:func:`repro.exec.physical.lower` verifies the lowered plan.

This module is imported by the optimizer and the physical planner, so
it stays import-light: the submodules load lazily on first attribute
access (PEP 562).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Iterator, List

__all__ = [
    "verification_enabled",
    "set_verification",
    "verified",
    # errors (repro.analysis.errors)
    "PlanVerificationError",
    "PlanReferenceError",
    "PlanCompatibilityError",
    "PlanTypeError",
    "SemiringSafetyError",
    # schema inference (repro.analysis.schema)
    "Schema",
    "ColumnInfo",
    "infer_logical",
    "infer_expression",
    "TYPE_NUMBER",
    "TYPE_STRING",
    "TYPE_BOOL",
    "TYPE_ANY",
    # verification (repro.analysis.verify)
    "verify_logical",
    "verify_physical",
    "verify_bound",
    "verify_delta",
    # semiring-safety lint (repro.analysis.lint)
    "RewriteRule",
    "REWRITE_RULES",
    "check_semiring_safety",
    "rule_allowed",
    "SEMANTICS",
]

_LAZY = {
    "PlanVerificationError": "errors",
    "PlanReferenceError": "errors",
    "PlanCompatibilityError": "errors",
    "PlanTypeError": "errors",
    "SemiringSafetyError": "errors",
    "Schema": "schema",
    "ColumnInfo": "schema",
    "infer_logical": "schema",
    "infer_expression": "schema",
    "TYPE_NUMBER": "schema",
    "TYPE_STRING": "schema",
    "TYPE_BOOL": "schema",
    "TYPE_ANY": "schema",
    "verify_logical": "verify",
    "verify_physical": "verify",
    "verify_bound": "verify",
    "verify_delta": "verify",
    "RewriteRule": "lint",
    "REWRITE_RULES": "lint",
    "check_semiring_safety": "lint",
    "rule_allowed": "lint",
    "SEMANTICS": "lint",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_LAZY))


_enabled: bool = os.environ.get("REPRO_VERIFY_PLANS", "").strip().lower() not in (
    "",
    "0",
    "false",
    "off",
    "no",
)


def verification_enabled() -> bool:
    """Is per-rewrite / post-lowering plan verification on process-wide?"""
    return _enabled


def set_verification(enabled: bool) -> bool:
    """Set the process-wide verification switch; returns the old value."""
    global _enabled
    old = _enabled
    _enabled = bool(enabled)
    return old


@contextmanager
def verified(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping the verification switch (used by the
    differential fuzzer so every optimize/lower inside a case is
    verified, regardless of the ambient setting)."""
    old = set_verification(enabled)
    try:
        yield
    finally:
        set_verification(old)
