"""End-to-end query telemetry: traces, metrics, events, slow-query log.

Four cooperating facilities, all default-off or free when unused:

* **Tracing** — a :class:`QueryTrace` is a tree of :class:`Span`\\ s
  covering the pipeline stages (``parse`` → ``analyze`` → ``optimize``
  with one child mark per fired rewrite rule → ``lower`` → ``execute``)
  and, inside ``execute``, one span per physical operator evaluated by
  any of the four physical-IR executors (tuple det, tuple AU,
  vectorized det, vectorized AU — the parallel runtime's morsels show
  up as repeated operator spans under their ``Exchange``).  Operator
  spans carry wall time, output rows, and operator-specific attributes
  (hash-table build sizes, fallback kinds, morsel counts).  A trace
  renders as an indented tree (:meth:`QueryTrace.render`) and exports
  as Chrome trace-event JSON (:meth:`QueryTrace.chrome_trace`) loadable
  in ``chrome://tracing`` / Perfetto.

  Tracing follows the ``REPRO_VERIFY_PLANS`` pattern: a process-wide
  switch (:func:`set_tracing`, env ``REPRO_TRACE=1``) that
  ``Connection(trace=...)`` can override per session.  When no trace is
  active the executors' per-node hook is a single global-load-and-None
  check — the benchmark gate (``bench_session.py --telemetry-overhead``)
  holds the disabled path to ≤5% of a plain connection.

* **Metrics** — a process-wide :class:`MetricsRegistry` of monotone
  :class:`Counter`\\ s, :class:`Gauge`\\ s, and fixed-bucket
  :class:`Histogram`\\ s with Prometheus text exposition
  (:meth:`MetricsRegistry.prometheus_text`) and a JSON-able dump
  (:meth:`MetricsRegistry.dump`).  The session layer's
  ``ConnectionMetrics`` is a per-connection view whose increments flow
  through to the registry; the IVM runtime and the statistics
  accumulators publish their counters here too.

* **Event log** — :class:`EventLog` records a connection's history —
  ``query_begin`` / ``query_end``, per-tuple ``write`` (via the storage
  layer's delta sinks), and ``epoch_advance`` — as :class:`Event`\\ s
  with per-connection monotone sequence numbers: the replayable
  substrate a black-box snapshot-isolation checker needs.

* **Slow-query log** — :func:`configure_slow_log` arms process-wide
  thresholds (seconds, and/or a per-node estimation-error factor);
  executions that trip either get a :class:`SlowQuery` snapshot (plan
  rendering with actuals, trace if one was active) appended to a
  bounded ring read by :func:`slow_queries`.

Nothing here is thread-safe; like connections, use per worker.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

__all__ = [
    "Span",
    "QueryTrace",
    "tracing_enabled",
    "set_tracing",
    "traced",
    "start_trace",
    "current_trace",
    "stage",
    "annotate",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "SlowQuery",
    "configure_slow_log",
    "slow_queries",
    "clear_slow_log",
    "timing_enabled",
    "estimation_error",
    "Event",
    "EventLog",
]


# ======================================================================
# tracing: spans and traces
# ======================================================================
class Span:
    """One timed region: a pipeline stage or one operator evaluation.

    ``cat`` is ``"stage"``, ``"operator"``, or ``"mark"`` (zero-duration
    child, e.g. a fired rewrite rule).  ``node_id`` is ``id(pnode)`` for
    operator spans — the join key EXPLAIN ANALYZE uses to merge span
    times into the plan rendering.  ``attrs`` holds operator payloads:
    ``rows_out``, ``build_rows``, ``build_keys``, ``morsels``,
    ``fallback``, …
    """

    __slots__ = ("name", "cat", "start", "end", "attrs", "children", "node_id")

    def __init__(
        self,
        name: str,
        cat: str = "stage",
        node_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.node_id = node_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = {}
        self.children: List["Span"] = []

    @property
    def duration(self) -> float:
        """Wall seconds (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.cat!r}, {self.duration * 1e3:.3f}ms)"


class QueryTrace:
    """A tree of spans for one query lifecycle, built via a span stack.

    Executors and the session layer push/pop through :meth:`begin` /
    :meth:`end` (or the :func:`stage` context manager); the per-operator
    fast path additionally folds inclusive wall time into
    :attr:`node_times` keyed by physical-node id, which
    ``explain_physical`` merges into EXPLAIN ANALYZE output.
    :meth:`problems` machine-checks well-formedness — the fuzzer's
    telemetry lane asserts it returns nothing.
    """

    def __init__(self, name: str = "query") -> None:
        self.root = Span(name, "trace")
        self._stack: List[Span] = [self.root]
        #: ``id(physical node) -> [inclusive seconds, evaluations]``
        self.node_times: Dict[int, List[float]] = {}
        #: ``id(physical node) -> {attr: value}`` — operator-span
        #: attributes (chunk-skip counts, hash-partition fan-out, …)
        #: folded in by :meth:`end_op`; ``explain_physical`` renders
        #: them in EXPLAIN ANALYZE output
        self.node_attrs: Dict[int, Dict[str, Any]] = {}
        self._discipline: List[str] = []

    # -- span lifecycle ------------------------------------------------
    def begin(self, name: str, cat: str = "stage") -> Span:
        span = Span(name, cat)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        span.end = time.perf_counter()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # mis-nested end: record, then recover by unwinding
            self._discipline.append(f"span {span.name!r} ended out of order")
            while len(self._stack) > 1:
                top = self._stack.pop()
                if top is span:
                    break

    def mark(self, name: str, cat: str = "mark", **attrs: Any) -> Span:
        """A zero-duration child of the current span (e.g. one fired
        rewrite rule)."""
        span = Span(name, cat)
        span.end = span.start
        span.attrs.update(attrs)
        self._stack[-1].children.append(span)
        return span

    # -- operator fast path (called per physical node) -----------------
    def begin_op(self, pnode: Any) -> Span:
        span = Span(type(pnode).__name__, "operator", node_id=id(pnode))
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end_op(self, span: Span, rows: Optional[int] = None) -> None:
        self.end(span)
        if rows is not None:
            span.attrs["rows_out"] = rows
        entry = self.node_times.get(span.node_id)
        if entry is None:
            self.node_times[span.node_id] = [span.duration, 1]
        else:  # same node re-evaluated (e.g. once per morsel)
            entry[0] += span.duration
            entry[1] += 1
        if span.attrs:
            self.node_attrs.setdefault(span.node_id, {}).update(span.attrs)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span."""
        self._stack[-1].attrs.update(attrs)

    def alias_node(self, template_id: int, bound_id: int) -> None:
        """Mirror a bound-copy node's time onto its cached template —
        the span analogue of the session layer's ``actuals`` mirroring."""
        if bound_id in self.node_times:
            self.node_times[template_id] = self.node_times[bound_id]
        if bound_id in self.node_attrs:
            self.node_attrs[template_id] = self.node_attrs[bound_id]

    def finish(self) -> None:
        while len(self._stack) > 1:  # unclosed spans: close, flag below
            self._stack.pop().end = time.perf_counter()
        if self.root.end is None:
            self.root.end = time.perf_counter()
            self._stack.clear()

    # -- introspection -------------------------------------------------
    def spans(self) -> Iterator[Span]:
        return self.root.walk()

    @property
    def duration(self) -> float:
        return self.root.duration

    def problems(self) -> List[str]:
        """Well-formedness violations (empty on a healthy trace):
        unclosed/orphan spans, negative durations, children escaping
        their parent's interval, out-of-order ends."""
        out = list(self._discipline)
        if self.root.end is None:
            out.append("trace not finished")

        def check(span: Span) -> None:
            if span.end is None:
                out.append(f"orphan span {span.name!r} (never ended)")
            elif span.end < span.start:
                out.append(f"negative duration in span {span.name!r}")
            for child in span.children:
                if child.start < span.start - 1e-9:
                    out.append(
                        f"span {child.name!r} starts before parent {span.name!r}"
                    )
                if (
                    child.end is not None
                    and span.end is not None
                    and child.end > span.end + 1e-9
                ):
                    out.append(
                        f"span {child.name!r} ends after parent {span.name!r}"
                    )
                check(child)

        check(self.root)
        return out

    # -- exports -------------------------------------------------------
    def render(self) -> str:
        """The trace as an indented tree with durations and attributes."""
        lines: List[str] = []

        def fmt_attrs(span: Span) -> str:
            if not span.attrs:
                return ""
            body = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            return f"  [{body}]"

        def walk(span: Span, depth: int) -> None:
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.duration * 1e3:.3f}ms{fmt_attrs(span)}"
            )
            for child in span.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def chrome_trace(self) -> List[Dict[str, Any]]:
        """Chrome trace-event JSON objects (``chrome://tracing`` /
        Perfetto): complete ``"X"`` events for spans, instant ``"i"``
        events for marks, all on one pid/tid, µs since trace start."""
        t0 = self.root.start
        pid = os.getpid()
        events: List[Dict[str, Any]] = []
        for span in self.spans():
            ev: Dict[str, Any] = {
                "name": span.name,
                "cat": span.cat,
                "ts": (span.start - t0) * 1e6,
                "pid": pid,
                "tid": 0,
            }
            if span.cat == "mark":
                ev["ph"] = "i"
                ev["s"] = "t"
            else:
                ev["ph"] = "X"
                ev["dur"] = span.duration * 1e6
            if span.attrs:
                ev["args"] = dict(span.attrs)
            events.append(ev)
        return events

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"traceEvents": self.chrome_trace()}, fh)


# ----------------------------------------------------------------------
# process-wide tracing switch (the REPRO_VERIFY_PLANS pattern) and the
# active trace the executors' hot path checks
# ----------------------------------------------------------------------
_enabled: bool = os.environ.get("REPRO_TRACE", "").strip().lower() not in (
    "",
    "0",
    "false",
    "no",
    "off",
)

#: The live trace, or ``None``.  Executors read this module attribute
#: directly once per node — the entire disabled-tracing cost.
_ACTIVE: Optional[QueryTrace] = None


def tracing_enabled() -> bool:
    """The process-wide default for connections whose ``trace`` is unset."""
    return _enabled


def set_tracing(enabled: bool) -> bool:
    """Set the process-wide tracing default; returns the previous value."""
    global _enabled
    old = _enabled
    _enabled = bool(enabled)
    return old


@contextmanager
def traced(enabled: bool = True) -> Iterator[None]:
    """Temporarily set the process-wide tracing default (tests)."""
    old = set_tracing(enabled)
    try:
        yield
    finally:
        set_tracing(old)


def current_trace() -> Optional[QueryTrace]:
    return _ACTIVE


@contextmanager
def start_trace(name: str = "query") -> Iterator[QueryTrace]:
    """Activate a fresh :class:`QueryTrace` for the duration of the
    block.  Nested activations stack (inner traces shadow outer)."""
    global _ACTIVE
    previous = _ACTIVE
    trace = QueryTrace(name)
    _ACTIVE = trace
    try:
        yield trace
    finally:
        trace.finish()
        _ACTIVE = previous


@contextmanager
def stage(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """A pipeline-stage span in the active trace; no-op when inactive."""
    tr = _ACTIVE
    if tr is None:
        yield None
        return
    span = tr.begin(name, "stage")
    span.attrs.update(attrs)
    try:
        yield span
    finally:
        tr.end(span)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the innermost open *operator* span, if any.

    Called from deep inside executor helpers (hash-join builds, the
    parallel runtime) that don't carry a span reference; silently a
    no-op when tracing is off or the current span is not an operator."""
    tr = _ACTIVE
    if tr is not None and tr._stack and tr._stack[-1].cat == "operator":
        tr._stack[-1].attrs.update(attrs)


# ======================================================================
# metrics registry
# ======================================================================
class Counter:
    """A monotone counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A settable instantaneous value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


#: Default histogram buckets: latency-flavoured, seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


class MetricsRegistry:
    """A named collection of counters/gauges/histograms.

    Metrics are get-or-created by ``(name, labels)`` — repeated
    registration returns the same object, a kind clash raises.  One
    process-wide instance (:func:`get_registry`) backs the session
    layer, IVM, and statistics counters; tests wanting isolation
    construct their own and pass it down.
    """

    def __init__(self) -> None:
        # name -> (kind, help, {label key -> metric})
        self._metrics: "Dict[str, Tuple[str, str, Dict[tuple, Any]]]" = {}

    def _get(
        self, kind: str, name: str, help_text: str, labels: Mapping[str, str],
        factory: Callable[..., Any],
    ) -> Any:
        entry = self._metrics.get(name)
        if entry is None:
            entry = (kind, help_text, {})
            self._metrics[name] = entry
        elif entry[0] != kind:
            raise ValueError(
                f"metric {name!r} already registered as {entry[0]}, not {kind}"
            )
        key = _label_key(labels)
        metric = entry[2].get(key)
        if metric is None:
            metric = factory(name, key)
            entry[2][key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            "histogram", name, help, labels,
            lambda n, k: Histogram(n, k, buckets),
        )

    # -- exposition ----------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """A JSON-able snapshot of every metric."""
        out: Dict[str, Any] = {}
        for name, (kind, _help, children) in sorted(self._metrics.items()):
            series = []
            for key, metric in sorted(children.items()):
                entry: Dict[str, Any] = {"labels": dict(key)}
                if kind == "histogram":
                    entry["sum"] = metric.sum
                    entry["count"] = metric.count
                    entry["buckets"] = {
                        str(b): c
                        for b, c in zip(metric.buckets, metric.counts)
                    }
                    entry["buckets"]["+Inf"] = metric.counts[-1]
                else:
                    entry["value"] = metric.value
                series.append(entry)
            out[name] = {"type": kind, "series": series}
        return out

    def prometheus_text(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        lines: List[str] = []
        for name, (kind, help_text, children) in sorted(self._metrics.items()):
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key, metric in sorted(children.items()):
                if kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(metric.buckets, metric.counts):
                        cumulative += count
                        labels = _label_text(key + (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    cumulative += metric.counts[-1]
                    labels = _label_text(key + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    lines.append(f"{name}_sum{_label_text(key)} {metric.sum:g}")
                    lines.append(f"{name}_count{_label_text(key)} {metric.count}")
                else:
                    value = metric.value
                    text = f"{value:g}" if isinstance(value, float) else str(value)
                    lines.append(f"{name}{_label_text(key)} {text}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every metric (tests)."""
        self._metrics.clear()


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry."""
    return _REGISTRY


# ======================================================================
# slow-query / misestimation log
# ======================================================================
@dataclass
class SlowQuery:
    """One threshold-tripping execution, snapshotted for post-mortem."""

    sql: Optional[str]
    engine: str
    backend: str
    seconds: float
    rows: Optional[int]
    #: ``"slow"``, ``"misestimate"``, or ``"slow+misestimate"``
    reason: str
    #: worst per-node estimation-error factor (``None`` if no actuals)
    worst_factor: Optional[float]
    #: the physical plan rendered with actuals at snapshot time
    plan: str
    #: the rendered trace, when one was active
    trace: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


_SLOW_THRESHOLD: Optional[float] = None
_MISEST_THRESHOLD: Optional[float] = None
_SLOW_LOG: "deque[SlowQuery]" = deque(maxlen=64)


def configure_slow_log(
    threshold: Optional[float] = None,
    misestimation: Optional[float] = None,
    capacity: int = 64,
) -> None:
    """Arm (or, with both thresholds ``None``, disarm) the slow-query log.

    ``threshold`` is seconds of execution wall time; ``misestimation``
    is a per-node estimation-error factor (``actual``/``estimate`` or
    its inverse, whichever exceeds 1).  Arming either makes the session
    layer time every execution (and, for misestimation, collect
    actuals) — the documented cost of the feature.
    """
    global _SLOW_THRESHOLD, _MISEST_THRESHOLD, _SLOW_LOG
    _SLOW_THRESHOLD = threshold
    _MISEST_THRESHOLD = misestimation
    if capacity != _SLOW_LOG.maxlen:
        _SLOW_LOG = deque(_SLOW_LOG, maxlen=capacity)


def slow_queries() -> Tuple[SlowQuery, ...]:
    return tuple(_SLOW_LOG)


def clear_slow_log() -> None:
    _SLOW_LOG.clear()


def timing_enabled() -> bool:
    """Whether the session layer should time executions: the slow-query
    log is armed (tracing times implicitly via its spans)."""
    return _SLOW_THRESHOLD is not None or _MISEST_THRESHOLD is not None


def misestimation_armed() -> bool:
    return _MISEST_THRESHOLD is not None


def estimation_error(estimate: float, actual: float) -> float:
    """Symmetric estimation-error factor: 1.0 is a perfect estimate,
    2.0 means off by 2× in either direction.  ``+1`` smoothing keeps
    empty results finite."""
    return max(
        (actual + 1.0) / (estimate + 1.0), (estimate + 1.0) / (actual + 1.0)
    )


def record_query(
    *,
    sql: Optional[str],
    engine: str,
    backend: str,
    seconds: float,
    rows: Optional[int],
    pplan: Any = None,
    actuals: Optional[Dict[int, int]] = None,
    trace: Optional[QueryTrace] = None,
) -> Optional[SlowQuery]:
    """Offer one finished execution to the slow-query log (session layer
    calls this only when :func:`timing_enabled`).  Returns the record
    appended, if the execution tripped a threshold."""
    reasons = []
    worst: Optional[float] = None
    if _SLOW_THRESHOLD is not None and seconds >= _SLOW_THRESHOLD:
        reasons.append("slow")
    if _MISEST_THRESHOLD is not None and pplan is not None and actuals:
        worst = 1.0
        for node in pplan.walk():
            actual = actuals.get(id(node))
            if actual is None or not math.isfinite(node.est):
                continue
            worst = max(worst, estimation_error(node.est, actual))
        if worst >= _MISEST_THRESHOLD:
            reasons.append("misestimate")
    if not reasons:
        return None
    if pplan is not None:
        from .exec.physical import explain_physical

        plan_text = explain_physical(pplan, actuals=actuals)
    else:
        plan_text = "(legacy direct interpretation: no physical plan)"
    record = SlowQuery(
        sql=sql,
        engine=engine,
        backend=backend,
        seconds=seconds,
        rows=rows,
        reason="+".join(reasons),
        worst_factor=worst,
        plan=plan_text,
        trace=trace.render() if trace is not None else None,
    )
    _SLOW_LOG.append(record)
    return record


# ======================================================================
# structured event log
# ======================================================================
class Event(Tuple[int, str, Dict[str, Any]]):
    """``(seq, kind, data)`` — one entry in a connection's history."""

    __slots__ = ()

    def __new__(cls, seq: int, kind: str, data: Dict[str, Any]) -> "Event":
        return tuple.__new__(cls, (seq, kind, data))

    @property
    def seq(self) -> int:
        return self[0]

    @property
    def kind(self) -> str:
        return self[1]

    @property
    def data(self) -> Dict[str, Any]:
        return self[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self[0]}, kind={self[1]!r}, data={self[2]!r})"


class EventLog:
    """A connection's structured history with monotone sequence numbers.

    Four event kinds (``data`` keys in parentheses):

    * ``query_begin`` — ``sql`` (or ``plan``), ``params``, ``epoch``
    * ``query_end`` — ``rows``, ``epoch``, ``cached`` (result-memo hit),
      and ``seconds`` when the session layer timed the run
    * ``write`` — ``table``, ``row``, ``sign`` (+1 insert / -1 delete),
      ``count`` (multiplicity or annotation), ``epoch``; captured by
      delta sinks attached to every relation of the connection's
      database (the same mechanism IVM maintains views with)
    * ``epoch_advance`` — ``before``/``after``; emitted when the epoch
      moved outside any sinked write (e.g. ``db[name] = rel``
      rebinding), detected lazily at the next event

    Sequence numbers strictly increase per log; the ring keeps the last
    ``capacity`` events (``None`` capacity keeps everything).
    """

    def __init__(self, connection: Any, capacity: Optional[int] = 4096) -> None:
        self.connection = connection
        self._events: "deque[Event]" = deque(maxlen=capacity)
        self._seq = 0
        self._sinks: List[Tuple[Any, Callable]] = []
        self._last_epoch = connection.epoch
        self._attach_sinks()

    # -- write capture -------------------------------------------------
    def _attach_sinks(self) -> None:
        relations = getattr(self.connection.db, "relations", None)
        if relations is None:
            return
        tracked = {id(rel) for rel, _ in self._sinks}
        for name, rel in relations.items():
            if id(rel) in tracked or not hasattr(rel, "_delta_sinks"):
                continue

            def sink(row: Any, count: Any, sign: int, _name: str = name) -> None:
                self._record(
                    "write",
                    table=_name,
                    row=row,
                    sign=sign,
                    count=count,
                    epoch=self.connection.epoch,
                )

            rel._delta_sinks = rel._delta_sinks + (sink,)
            self._sinks.append((rel, sink))

    def close(self) -> None:
        """Detach every write sink (idempotent)."""
        for rel, sink in self._sinks:
            rel._delta_sinks = tuple(
                s for s in rel._delta_sinks if s is not sink
            )
        self._sinks.clear()

    # -- recording -----------------------------------------------------
    def _record(self, kind: str, **data: Any) -> Event:
        event = Event(self._seq, kind, data)
        self._seq += 1
        self._events.append(event)
        self._last_epoch = data.get("epoch", self._last_epoch)
        return event

    def record(self, kind: str, **data: Any) -> Event:
        """Record one event, first emitting ``epoch_advance`` if the
        connection's epoch moved outside any captured write (and
        re-attaching sinks — a rebinding swapped in new relations)."""
        epoch = self.connection.epoch
        if epoch != self._last_epoch:
            self._record(
                "epoch_advance", before=self._last_epoch, after=epoch
            )
            self._attach_sinks()
        data.setdefault("epoch", epoch)
        return self._record(kind, **data)

    def query_begin(
        self, sql: Optional[str], params: Any = None
    ) -> Event:
        return self.record(
            "query_begin",
            sql=sql if sql is not None else "(logical plan)",
            params=params,
        )

    def query_end(
        self,
        rows: Optional[int],
        cached: bool = False,
        seconds: Optional[float] = None,
    ) -> Event:
        data: Dict[str, Any] = {"rows": rows, "cached": cached}
        if seconds is not None:
            data["seconds"] = seconds
        return self.record("query_end", **data)

    # -- reading -------------------------------------------------------
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    @property
    def last_seq(self) -> int:
        """The next sequence number to be assigned."""
        return self._seq

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)
