"""Rule-based logical plan optimizer shared by both engines.

The paper's middleware rewrites *one* logical query for the deterministic
backend and for the bound-preserving AU encoding; because this repo's two
interpreters (:func:`repro.db.engine.evaluate_det` and
:func:`repro.algebra.evaluator.evaluate_audb`) share the
:mod:`repro.algebra.ast` plan language, a single logical optimizer speeds
up both at once.  Every rewrite below is semantics-preserving for *both*
semantics — bag (``N``) and ``N^AU`` — which the property tests in
``tests/test_optimizer.py`` verify on randomized plans and databases.

Rules, applied in order by :func:`optimize`:

1. **Selection splitting + pushdown** — conjunctive conditions are split
   and each conjunct is pushed through Projection (by substituting the
   projected expressions), Rename (by inverting the mapping), Union
   (positionally, into both branches), OrderBy, and into the side(s) of a
   Join / CrossProduct that cover its variables.  A conjunct also pushes
   through ``Aggregate`` when it references only group-by columns whose
   catalog statistics certify *every* value certain (uncertain fraction
   0): grouping on fully certain columns partitions by exact value, so
   filtering groups after aggregation equals filtering their input rows
   before it, in both semantics.  ``Distinct``, ``Difference``,
   aggregates over uncertain (or statistics-less) group-by columns, and
   ``Limit`` remain barriers: the AU semantics SG-combines (merges
   ranges) before filtering, so commuting a selection past them is
   unsound, and limiting is order-sensitive.
2. **Join promotion** — conjuncts spanning both sides of a CrossProduct
   become the condition of a Join (both engines define ``R ⋈_θ S`` as
   ``σ_θ(R × S)``, so this is definitional), which unlocks the engines'
   hash-join fast paths.
3. **Cost-based join reordering** — maximal Join/CrossProduct trees are
   flattened into (leaves, conjuncts).  When :class:`Statistics` carries a
   per-column catalog (:mod:`repro.algebra.stats`), a dynamic-programming
   enumerator searches *bushy* join trees, costing each subset of leaves
   by selectivity-derived cardinality estimates (``join_order="dp"``, the
   default).  Without column statistics — or with ``join_order="greedy"``
   — leaves are re-ordered greedily by estimated cardinality, joining
   along equi-edges first.  A final projection restores the original
   column order.
4. **OrderBy+Limit fusion** — ``Limit(OrderBy(R))`` becomes a
   :class:`~repro.algebra.ast.TopK` node so the deterministic engine can
   return the *correct* top-k rows.
5. **Projection pruning** — columns no ancestor references are dropped by
   inserting narrowing projections below joins and above base tables.

Use :func:`explain` to render a plan (optimized or not) with per-node
cardinality estimates (and, given an ``actuals`` mapping collected by an
engine, estimated-vs-actual rows per node).  Tables the catalog knows
nothing about are flagged with an explicit warning line instead of being
silently priced at :data:`DEFAULT_CARD`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.expressions import (
    Add,
    And,
    Const,
    Div,
    Eq,
    Expression,
    Geq,
    Gt,
    If,
    IsNull,
    Leq,
    Lt,
    MakeUncertain,
    Mul,
    Neg,
    Neq,
    Not,
    Or,
    Parameter,
    Sub,
    Var,
)
from ..analysis import verification_enabled
from ..core.compression import recommended_buckets
from .ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from .stats import (
    DEFAULT_SELECTIVITY,
    ColumnStats,
    equi_join_selectivity,
    harvest_column_stats,
    predicate_selectivity,
)

__all__ = [
    "Statistics",
    "optimize",
    "explain",
    "schema_of",
    "estimate",
    "compression_hints",
    "derive_delta",
    "DeltaPlan",
    "DeltaSegment",
    "JOIN_ORDERS",
    "DEFAULT_JOIN_ORDER",
]


# ----------------------------------------------------------------------
# statistics
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Statistics:
    """Per-relation cardinalities, schemas, and column statistics.

    Harvested from either a :class:`~repro.db.storage.DetDatabase` or an
    :class:`~repro.core.relation.AUDatabase` — both expose ``.relations``
    mapping names to relations with a ``.schema``.  ``columns`` maps
    table name to ``{attribute: ColumnStats}`` (see
    :mod:`repro.algebra.stats`); it may be empty, in which case only the
    cardinality-based heuristics apply and join reordering falls back to
    the greedy strategy.
    """

    cardinalities: Mapping[str, int] = field(default_factory=dict)
    schemas: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    columns: Mapping[str, Mapping[str, ColumnStats]] = field(default_factory=dict)
    #: catalog epoch of the database at harvest time (0 for databases
    #: without write versioning) — the session layer compares it against
    #: the live database epoch to decide plan-cache staleness
    epoch: int = 0

    @classmethod
    def from_database(cls, db, column_stats: bool = True) -> "Statistics":
        cards: Dict[str, int] = {}
        schemas: Dict[str, Tuple[str, ...]] = {}
        for name, rel in getattr(db, "relations", {}).items():
            schemas[name] = tuple(rel.schema)
            total = getattr(rel, "total_rows", None)
            cards[name] = total() if callable(total) else len(rel)
        columns = harvest_column_stats(db) if column_stats else {}
        return cls(cards, schemas, columns, epoch=getattr(db, "epoch", 0))

    def fingerprint(self) -> tuple:
        return (
            tuple(sorted(self.cardinalities.items())),
            tuple(sorted((k, tuple(v)) for k, v in self.schemas.items())),
            tuple(
                sorted(
                    (t, tuple(sorted((c, cs.fingerprint()) for c, cs in cols.items())))
                    for t, cols in self.columns.items()
                )
            ),
        )


DEFAULT_CARD = 1000.0

#: Join-enumeration strategies: ``"dp"`` (cost-based bushy trees, needs
#: column statistics) with ``"greedy"`` as the built-in fallback.
JOIN_ORDERS = ("dp", "greedy")
DEFAULT_JOIN_ORDER = "dp"

#: DP join enumeration is O(3^n) in the number of leaves; past this many
#: leaves the greedy heuristic takes over.
_DP_MAX_LEAVES = 10


# ----------------------------------------------------------------------
# rewrite recording (semiring-safety lint support)
# ----------------------------------------------------------------------
@dataclass
class _RewriteCtx:
    """Per-:func:`optimize` call state the recursive passes consult.

    ``semantics`` is the annotation semantics the optimized plan must
    stay valid for (``"both"`` / ``"bag"`` / ``"au"``): rewrites that
    are *bag-only* (declared ``au_safe=False`` in
    :data:`repro.analysis.lint.REWRITE_RULES`) fire only under
    ``"bag"``.  ``trace`` collects the names of every rule that fired,
    in first-fired order, for the semiring-safety lint.
    """

    semantics: str = "both"
    trace: List[str] = field(default_factory=list)


#: the context of the currently-running :func:`optimize` call; the
#: passes are deeply recursive, so this rides module state (set/reset
#: by the driver) instead of threading a parameter through every call
_ctx: Optional[_RewriteCtx] = None


def _record(rule: str) -> None:
    """Note that rewrite ``rule`` fired (once per optimize call)."""
    if _ctx is not None and rule not in _ctx.trace:
        _ctx.trace.append(rule)


def _bag_only_allowed() -> bool:
    """May a rewrite that is *not* AU-safe fire right now?"""
    return _ctx is not None and _ctx.semantics == "bag"


# ----------------------------------------------------------------------
# expression helpers
# ----------------------------------------------------------------------
def _split(condition: Expression) -> List[Expression]:
    """Flatten a conjunction into its conjuncts."""
    if isinstance(condition, And):
        return _split(condition.left) + _split(condition.right)
    return [condition]


def _and_all(conjuncts: Sequence[Expression]) -> Expression:
    out = conjuncts[0]
    for c in conjuncts[1:]:
        out = And(out, c)
    return out


_BINARY = (And, Or, Eq, Neq, Leq, Lt, Geq, Gt, Add, Sub, Mul, Div)


def _substitute(
    expr: Expression, mapping: Mapping[str, Expression]
) -> Optional[Expression]:
    """``expr[x := mapping[x]]``; ``None`` when an unknown node blocks it.

    Substitution commutes with both ``eval`` and ``eval_range`` (both are
    defined structurally over the valuation), which is what makes
    pushdown through Projection/Rename semantics-preserving.
    """
    if isinstance(expr, Var):
        return mapping.get(expr.name, expr)
    if isinstance(expr, (Const, Parameter)):
        # parameters are leaf placeholders: substitution never touches
        # them, so parameterized conjuncts push down like constant ones
        return expr
    if isinstance(expr, _BINARY):
        left = _substitute(expr.left, mapping)
        right = _substitute(expr.right, mapping)
        if left is None or right is None:
            return None
        return type(expr)(left, right)
    if isinstance(expr, (Not, Neg, IsNull)):
        inner = _substitute(expr.operand, mapping)
        return None if inner is None else type(expr)(inner)
    if isinstance(expr, If):
        parts = [
            _substitute(e, mapping)
            for e in (expr.cond, expr.then_branch, expr.else_branch)
        ]
        return None if any(p is None for p in parts) else If(*parts)
    if isinstance(expr, MakeUncertain):
        parts = [_substitute(e, mapping) for e in (expr.lb, expr.sg, expr.ub)]
        return None if any(p is None for p in parts) else MakeUncertain(*parts)
    return None


# ----------------------------------------------------------------------
# schema / cardinality inference
# ----------------------------------------------------------------------
def schema_of(plan: Plan, stats: Optional[Statistics]) -> Optional[Tuple[str, ...]]:
    """Output attribute names of ``plan`` (``None`` when unknown)."""
    if isinstance(plan, TableRef):
        return stats.schemas.get(plan.name) if stats else None
    if isinstance(plan, Projection):
        return tuple(name for _, name in plan.columns)
    if isinstance(plan, Aggregate):
        return tuple(plan.group_by) + tuple(a.name for a in plan.aggregates)
    if isinstance(plan, Rename):
        child = schema_of(plan.child, stats)
        if child is None:
            return None
        mapping = plan.mapping_dict()
        return tuple(mapping.get(a, a) for a in child)
    if isinstance(plan, (Join, CrossProduct)):
        left = schema_of(plan.left, stats)
        right = schema_of(plan.right, stats)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(plan, (Union, Difference)):
        return schema_of(plan.left, stats)
    if isinstance(plan, (Selection, Distinct, OrderBy, Limit, TopK)):
        return schema_of(plan.child, stats)
    return None


def estimate(
    plan: Plan,
    stats: Optional[Statistics],
    warnings: Optional[List[str]] = None,
) -> float:
    """Cardinality estimate for ``plan``.

    With a column catalog in ``stats`` this uses selectivity estimation
    (:mod:`repro.algebra.stats`); otherwise it falls back to the PR 1
    magic-constant heuristics.  Tables the catalog does not know are
    priced at :data:`DEFAULT_CARD` and reported through ``warnings`` (a
    caller-supplied list) instead of failing silently — :func:`explain`
    surfaces them as warning lines.
    """
    card, _columns = _estimate(plan, stats, warnings)
    return card


def _warn_unknown_table(name: str, warnings: Optional[List[str]]) -> None:
    if warnings is None:
        return
    message = (
        f"no statistics for table '{name}' — assuming {DEFAULT_CARD:.0f} rows"
    )
    if message not in warnings:
        warnings.append(message)


def _estimate(
    plan: Plan, stats: Optional[Statistics], warnings: Optional[List[str]]
) -> Tuple[float, Optional[Dict[str, ColumnStats]]]:
    """Estimate ``plan``'s cardinality and propagate column statistics.

    Returns ``(rows, columns)`` where ``columns`` maps output attribute
    names to :class:`ColumnStats` (``None`` when the catalog cannot see
    through this subtree).
    """
    if isinstance(plan, TableRef):
        if stats is None:
            return DEFAULT_CARD, None
        if plan.name not in stats.cardinalities:
            _warn_unknown_table(plan.name, warnings)
            return DEFAULT_CARD, None
        card = float(stats.cardinalities[plan.name])
        columns = stats.columns.get(plan.name)
        return card, dict(columns) if columns is not None else None
    if isinstance(plan, Selection):
        card, columns = _estimate(plan.child, stats, warnings)
        if columns is not None:
            sel = predicate_selectivity(plan.condition, columns)
            columns = {k: v.scaled(sel) for k, v in columns.items()}
        else:
            sel = DEFAULT_SELECTIVITY
        return max(1.0, card * sel), columns
    if isinstance(plan, Projection):
        card, columns = _estimate(plan.child, stats, warnings)
        if columns is None:
            return card, None
        out: Dict[str, ColumnStats] = {}
        for expr, name in plan.columns:
            if isinstance(expr, Var) and expr.name in columns:
                out[name] = columns[expr.name]
        return card, out
    if isinstance(plan, Rename):
        card, columns = _estimate(plan.child, stats, warnings)
        if columns is None:
            return card, None
        mapping = plan.mapping_dict()
        return card, {mapping.get(k, k): v for k, v in columns.items()}
    if isinstance(plan, Join):
        left_card, left_cols = _estimate(plan.left, stats, warnings)
        right_card, right_cols = _estimate(plan.right, stats, warnings)
        if left_cols is None or right_cols is None:
            # legacy heuristic: one side acts as a key
            card = left_card * right_card / max(min(left_card, right_card), 1.0)
            return max(1.0, card), None
        combined = {**left_cols, **right_cols}
        card = left_card * right_card
        for conjunct in _split(plan.condition):
            card *= _conjunct_selectivity(conjunct, left_cols, right_cols, combined)
        card = max(1.0, card)
        return card, {k: v.capped(card) for k, v in combined.items()}
    if isinstance(plan, CrossProduct):
        left_card, left_cols = _estimate(plan.left, stats, warnings)
        right_card, right_cols = _estimate(plan.right, stats, warnings)
        columns = (
            {**left_cols, **right_cols}
            if left_cols is not None and right_cols is not None
            else None
        )
        return left_card * right_card, columns
    if isinstance(plan, Union):
        left_card, _ = _estimate(plan.left, stats, warnings)
        right_card, _ = _estimate(plan.right, stats, warnings)
        # column alignment across branches is positional; don't guess
        return left_card + right_card, None
    if isinstance(plan, Difference):
        card, columns = _estimate(plan.left, stats, warnings)
        _estimate(plan.right, stats, warnings)  # still surface warnings
        return card, columns
    if isinstance(plan, Distinct):
        card, columns = _estimate(plan.child, stats, warnings)
        if columns is not None and columns:
            product = 1.0
            for col in columns.values():
                product *= max(1, col.distinct)
                if product >= card:
                    break
            card = max(1.0, min(card, product))
        return card, columns
    if isinstance(plan, OrderBy):
        return _estimate(plan.child, stats, warnings)
    if isinstance(plan, Aggregate):
        card, columns = _estimate(plan.child, stats, warnings)
        if not plan.group_by:
            return 1.0, None
        if columns is not None and all(k in columns for k in plan.group_by):
            groups = 1.0
            for key in plan.group_by:
                groups *= max(1, columns[key].distinct)
                if groups >= card:
                    break
            out_card = max(1.0, min(card, groups))
            out_cols = {k: columns[k].capped(out_card) for k in plan.group_by}
            return out_card, out_cols
        return max(1.0, card / 4.0), None
    if isinstance(plan, (Limit, TopK)):
        card, columns = _estimate(plan.child, stats, warnings)
        card = min(float(plan.n), card)
        if columns is not None:
            columns = {k: v.capped(card) for k, v in columns.items()}
        return card, columns
    return DEFAULT_CARD, None


def _conjunct_selectivity(
    conjunct: Expression,
    left_cols: Mapping[str, ColumnStats],
    right_cols: Mapping[str, ColumnStats],
    combined: Mapping[str, ColumnStats],
) -> float:
    """Selectivity of one join conjunct; equi-conjuncts spanning both
    sides use the distinct-count formula."""
    if _is_equi(conjunct):
        a, b = conjunct.left.name, conjunct.right.name
        if a in left_cols and b in right_cols:
            return equi_join_selectivity(left_cols[a], right_cols[b])
        if a in right_cols and b in left_cols:
            return equi_join_selectivity(right_cols[a], left_cols[b])
    return predicate_selectivity(conjunct, combined)


# ----------------------------------------------------------------------
# rule 1+2: selection splitting, pushdown, join promotion
# ----------------------------------------------------------------------
def _wrap(plan: Plan, conjuncts: Sequence[Expression]) -> Plan:
    if not conjuncts:
        return plan
    return Selection(plan, _and_all(list(conjuncts)))


def _pushdown(plan: Plan, pending: List[Expression], stats) -> Plan:
    """Equivalent of ``σ_{∧pending}(plan)`` with conjuncts pushed deep."""
    if isinstance(plan, Selection):
        _record("selection-pushdown")
        return _pushdown(plan.child, _split(plan.condition) + pending, stats)

    if isinstance(plan, Projection):
        mapping = {name: expr for expr, name in plan.columns}
        down: List[Expression] = []
        kept: List[Expression] = []
        for c in pending:
            substituted = None
            if all(v in mapping for v in c.variables()):
                substituted = _substitute(c, mapping)
            if substituted is None:
                kept.append(c)
            else:
                down.append(substituted)
        child = _pushdown(plan.child, down, stats)
        return _wrap(Projection(child, plan.columns), kept)

    if isinstance(plan, Rename):
        inverse = {new: Var(old) for old, new in plan.mapping}
        down, kept = [], []
        for c in pending:
            substituted = _substitute(c, inverse)
            if substituted is None:
                kept.append(c)
            else:
                down.append(substituted)
        child = _pushdown(plan.child, down, stats)
        return _wrap(Rename(child, plan.mapping_dict()), kept)

    if isinstance(plan, Union):
        left_schema = schema_of(plan.left, stats)
        right_schema = schema_of(plan.right, stats)
        if (
            left_schema is not None
            and right_schema is not None
            and len(left_schema) == len(right_schema)
            and len(set(left_schema)) == len(left_schema)
            and len(set(right_schema)) == len(right_schema)
        ):
            # union output names follow the left branch; translate into the
            # right branch positionally
            left_set = set(left_schema)
            positional = {l: Var(r) for l, r in zip(left_schema, right_schema)}
            down_left, down_right, kept = [], [], []
            for c in pending:
                translated = None
                if c.variables() <= left_set:
                    translated = _substitute(c, positional)
                if translated is None:
                    kept.append(c)
                else:
                    down_left.append(c)
                    down_right.append(translated)
            left = _pushdown(plan.left, down_left, stats)
            right = _pushdown(plan.right, down_right, stats)
            return _wrap(Union(left, right), kept)
        left = _pushdown(plan.left, [], stats)
        right = _pushdown(plan.right, [], stats)
        return _wrap(Union(left, right), pending)

    if isinstance(plan, (Join, CrossProduct)):
        conjuncts = list(pending)
        if isinstance(plan, Join):
            conjuncts = _split(plan.condition) + conjuncts
        left_schema = schema_of(plan.left, stats)
        right_schema = schema_of(plan.right, stats)
        if (
            left_schema is not None
            and right_schema is not None
            and not set(left_schema) & set(right_schema)
        ):
            left_set, right_set = set(left_schema), set(right_schema)
            down_left, down_right, here = [], [], []
            for c in conjuncts:
                variables = c.variables()
                if variables <= left_set:
                    down_left.append(c)
                elif variables <= right_set:
                    down_right.append(c)
                else:
                    here.append(c)
            left = _pushdown(plan.left, down_left, stats)
            right = _pushdown(plan.right, down_right, stats)
            if here:
                if isinstance(plan, CrossProduct):
                    _record("join-promotion")
                return Join(left, right, _and_all(here))
            return CrossProduct(left, right)
        left = _pushdown(plan.left, [], stats)
        right = _pushdown(plan.right, [], stats)
        if isinstance(plan, Join):
            return _wrap(Join(left, right, plan.condition), pending)
        return _wrap(CrossProduct(left, right), pending)

    if isinstance(plan, OrderBy):
        child = _pushdown(plan.child, pending, stats)
        return OrderBy(child, plan.keys, plan.descending)

    # barriers under AU semantics: filtering before SG-combining
    # (Distinct/Difference) or before grouping (Aggregate) changes AU
    # range merging; Limit/TopK are order-sensitive; TableRef is a leaf.
    # For a plan destined only for the bag engines, Distinct and the
    # left input of Difference are transparent to selections —
    # σ_p(δ(R)) ≡ δ(σ_p(R)) for multiplicities, and
    # σ_p(R − S) ≡ σ_p(R) − S since max(0, R(t) − S(t)) is 0 either way
    # when p rejects t — so those conjuncts keep descending.  Both
    # rewrites are declared bag-only in the semiring-safety registry.
    if isinstance(plan, Distinct):
        if pending and _bag_only_allowed():
            _record("distinct-pushdown")
            return Distinct(_pushdown(plan.child, pending, stats))
        return _wrap(Distinct(_pushdown(plan.child, [], stats)), pending)
    if isinstance(plan, Difference):
        if pending and _bag_only_allowed():
            _record("difference-pushdown")
            left = _pushdown(plan.left, pending, stats)
            right = _pushdown(plan.right, [], stats)
            return Difference(left, right)
        left = _pushdown(plan.left, [], stats)
        right = _pushdown(plan.right, [], stats)
        return _wrap(Difference(left, right), pending)
    if isinstance(plan, Aggregate):
        down, kept = _split_aggregate_pushdown(plan, pending, stats)
        child = _pushdown(plan.child, down, stats)
        return _wrap(
            Aggregate(child, plan.group_by, plan.aggregates, plan.having), kept
        )
    if isinstance(plan, Limit):
        return _wrap(Limit(_pushdown(plan.child, [], stats), plan.n), pending)
    if isinstance(plan, TopK):
        child = _pushdown(plan.child, [], stats)
        return _wrap(TopK(child, plan.keys, plan.descending, plan.n), pending)
    return _wrap(plan, pending)


def _split_aggregate_pushdown(
    plan: Aggregate, pending: List[Expression], stats
) -> Tuple[List[Expression], List[Expression]]:
    """Partition conjuncts above an Aggregate into (pushable, kept).

    A conjunct commutes with grouping exactly when it filters whole
    groups and group membership cannot straddle it: it must reference
    only group-by columns (which pass through aggregation unchanged),
    reference at least one (a variable-free false predicate above a
    global aggregate must *not* suppress the empty-input result row),
    and — per the column catalog — every referenced column must be
    entirely certain.  Certain group-by values partition rows by exact
    equality in both semantics: no AU range overlap can merge two
    groups that the predicate separates, so σ∘γ ≡ γ∘σ (machine-checked
    by the Hypothesis exactness tests in ``tests/test_optimizer.py``).
    Anything else stays above the barrier.
    """
    if not pending:
        return [], []
    if not plan.group_by or stats is None:
        return [], list(pending)
    _card, columns = _estimate(plan.child, stats, None)
    if not columns:
        return [], list(pending)
    group_set = set(plan.group_by)
    agg_names = {spec.name for spec in plan.aggregates}
    down: List[Expression] = []
    kept: List[Expression] = []
    for conjunct in pending:
        variables = conjunct.variables()
        if (
            variables
            and variables <= group_set
            and not variables & agg_names
            and all(
                v in columns and columns[v].uncertain_fraction == 0.0
                for v in variables
            )
        ):
            down.append(conjunct)
        else:
            kept.append(conjunct)
    if down:
        _record("aggregate-pushdown")
    return down, kept


# ----------------------------------------------------------------------
# rule 3: cost-based (DP) / greedy join reordering
# ----------------------------------------------------------------------
def _flatten_joins(
    plan: Plan, leaves: List[Plan], conjuncts: List[Expression]
) -> None:
    if isinstance(plan, Join):
        conjuncts.extend(_split(plan.condition))
        _flatten_joins(plan.left, leaves, conjuncts)
        _flatten_joins(plan.right, leaves, conjuncts)
    elif isinstance(plan, CrossProduct):
        _flatten_joins(plan.left, leaves, conjuncts)
        _flatten_joins(plan.right, leaves, conjuncts)
    else:
        leaves.append(plan)


def _is_equi(c: Expression) -> bool:
    return isinstance(c, Eq) and isinstance(c.left, Var) and isinstance(c.right, Var)


def _reorder_joins(plan: Plan, stats, join_order: str) -> Plan:
    if isinstance(plan, (Join, CrossProduct)):
        leaves: List[Plan] = []
        conjuncts: List[Expression] = []
        _flatten_joins(plan, leaves, conjuncts)
        schemas = [schema_of(leaf, stats) for leaf in leaves]
        all_attrs: List[str] = [a for s in schemas if s is not None for a in s]
        if (
            len(leaves) >= 3
            and all(s is not None for s in schemas)
            and len(set(all_attrs)) == len(all_attrs)
        ):
            # attribute names are globally unique across the leaves, so
            # re-attaching a conjunct in a wider scope cannot re-bind it
            # to a different column
            new_leaves = [
                _reorder_joins(leaf, stats, join_order) for leaf in leaves
            ]
            reordered = None
            if join_order == "dp" and stats is not None:
                reordered = _dp_join_tree(new_leaves, schemas, conjuncts, stats)
                if reordered is not None:
                    _record("join-reorder-dp")
            if reordered is None:
                reordered = _greedy_join_tree(new_leaves, schemas, conjuncts, stats)
                if reordered is not None:
                    _record("join-reorder-greedy")
            if reordered is not None:
                return reordered
        # duplicate / unknown attribute names, few leaves, or a free
        # conjunct variable: keep the original join structure untouched
    return _rebuild(plan, lambda child: _reorder_joins(child, stats, join_order))


# ----------------------------------------------------------------------
# DP bushy join enumeration
# ----------------------------------------------------------------------
@dataclass
class _DPEntry:
    plan: Plan
    cost: float  # C_out: sum of estimated intermediate cardinalities
    card: float
    order: Tuple[int, ...]  # in-order leaf sequence (determines the schema)


def _dp_join_tree(
    leaves: List[Plan],
    schemas: List[Tuple[str, ...]],
    conjuncts: List[Expression],
    stats,
) -> Optional[Plan]:
    """Selinger-style dynamic program over *bushy* join trees.

    Enumerates every partition of every connected (or, when forced,
    disconnected) subset of the join leaves, costing candidates by the
    sum of estimated intermediate-result cardinalities derived from the
    per-column catalog.  Returns ``None`` — meaning "caller falls back to
    greedy" — when column statistics are missing for some leaf, a
    conjunct references an unknown attribute, or the leaf count exceeds
    :data:`_DP_MAX_LEAVES`.
    """
    n = len(leaves)
    if n > _DP_MAX_LEAVES:
        return None

    leaf_cards: List[float] = []
    leaf_cols: List[Dict[str, ColumnStats]] = []
    for leaf in leaves:
        card, cols = _estimate(leaf, stats, None)
        if cols is None:
            return None  # no column statistics below this leaf
        leaf_cards.append(max(card, 1.0))
        leaf_cols.append(cols)

    attr_to_leaf = {a: i for i, s in enumerate(schemas) for a in s}
    conjunct_masks: List[int] = []
    for c in conjuncts:
        mask = 0
        for v in c.variables():
            if v not in attr_to_leaf:
                return None  # free variable; caller keeps the order
            mask |= 1 << attr_to_leaf[v]
        # variable-free conjuncts behave as if they touched the first leaf
        # so each one attaches exactly once
        conjunct_masks.append(mask or 1)

    all_cols: Dict[str, ColumnStats] = {}
    for cols in leaf_cols:
        all_cols.update(cols)
    sels: List[float] = []
    for c, mask in zip(conjuncts, conjunct_masks):
        if _is_equi(c) and mask.bit_count() == 2:
            sels.append(
                equi_join_selectivity(
                    all_cols.get(c.left.name), all_cols.get(c.right.name)
                )
            )
        else:
            sels.append(predicate_selectivity(c, all_cols))

    full = (1 << n) - 1
    # estimated output cardinality per leaf subset: product of leaf
    # cardinalities times the selectivities of every covered conjunct
    card = [1.0] * (full + 1)
    for mask in range(1, full + 1):
        c = 1.0
        for i in range(n):
            if mask >> i & 1:
                c *= leaf_cards[i]
        for j, cm in enumerate(conjunct_masks):
            if cm & ~mask == 0:
                c *= sels[j]
        card[mask] = max(c, 1.0)

    best: Dict[int, _DPEntry] = {}
    for i in range(n):
        mask = 1 << i
        own = [j for j, cm in enumerate(conjunct_masks) if cm == mask]
        best[mask] = _DPEntry(
            plan=_wrap(leaves[i], [conjuncts[j] for j in own]),
            cost=0.0,
            card=card[mask],
            order=(i,),
        )

    for mask in range(1, full + 1):
        if mask.bit_count() < 2:
            continue
        lowbit = mask & -mask
        chosen: Optional[_DPEntry] = None
        chosen_split: Optional[Tuple[_DPEntry, _DPEntry]] = None
        sub = (mask - 1) & mask
        while sub:
            if sub & lowbit:  # canonical orientation: each split once
                other = mask ^ sub
                a, b = best[sub], best[other]
                cost = a.cost + b.cost + card[mask]
                if chosen is None or (cost, a.order + b.order) < (
                    chosen.cost,
                    chosen.order,
                ):
                    chosen = _DPEntry(None, cost, card[mask], a.order + b.order)
                    chosen_split = (a, b)
            sub = (sub - 1) & mask
        a, b = chosen_split
        # stream the (estimated) bigger side, hash the smaller: both
        # engines build their lookup structure over the right input
        if a.card < b.card:
            a, b = b, a
            chosen.order = a.order + b.order
        new = [
            j
            for j, cm in enumerate(conjunct_masks)
            if cm & ~mask == 0
            and any(cm >> i & 1 for i in a.order)
            and any(cm >> i & 1 for i in b.order)
        ]
        if new:
            chosen.plan = Join(a.plan, b.plan, _and_all([conjuncts[j] for j in new]))
        else:
            chosen.plan = CrossProduct(a.plan, b.plan)
        best[mask] = chosen

    top = best[full]
    tree = top.plan
    if top.order != tuple(range(n)):
        # restore the original column order (pure column projection: exact
        # in both semantics)
        original = [a for s in schemas for a in s]
        tree = Projection(tree, [(Var(a), a) for a in original])
    return tree


def _greedy_join_tree(
    leaves: List[Plan],
    schemas: List[Tuple[str, ...]],
    conjuncts: List[Expression],
    stats,
) -> Optional[Plan]:
    n = len(leaves)
    attr_to_leaf = {a: i for i, s in enumerate(schemas) for a in s}
    conjunct_leaves: List[Set[int]] = []
    for c in conjuncts:
        touched = set()
        for v in c.variables():
            if v not in attr_to_leaf:
                return None  # free variable; bail out, caller keeps order
            touched.add(attr_to_leaf[v])
        conjunct_leaves.append(touched)

    cards = [estimate(leaf, stats) for leaf in leaves]
    remaining = set(range(n))
    start = min(remaining, key=lambda i: (cards[i], i))
    order = [start]
    current = {start}
    remaining.discard(start)
    while remaining:
        def connected(i: int) -> bool:
            return any(
                _is_equi(conjuncts[j]) and i in conjunct_leaves[j]
                and conjunct_leaves[j] <= current | {i}
                for j in range(len(conjuncts))
            )

        pool = [i for i in remaining if connected(i)] or sorted(remaining)
        nxt = min(pool, key=lambda i: (cards[i], i))
        order.append(nxt)
        current.add(nxt)
        remaining.discard(nxt)

    tree = _attach_conjuncts(order, leaves, schemas, conjuncts)
    if order != list(range(n)):
        # restore the original column order (pure column projection: exact
        # in both semantics — annotations of identical tuples merge the
        # same way on either side of the join)
        original = [a for s in schemas for a in s]
        tree = Projection(tree, [(Var(a), a) for a in original])
    return tree


def _attach_conjuncts(
    order: List[int],
    leaves: List[Plan],
    schemas: List[Tuple[str, ...]],
    conjuncts: List[Expression],
) -> Plan:
    """Left-deep join tree over ``order``; each conjunct attaches at the
    first join where all its variables are in scope."""
    attr_to_leaf = {a: i for i, s in enumerate(schemas) for a in s}
    conjunct_leaves = [
        {attr_to_leaf[v] for v in c.variables() if v in attr_to_leaf}
        for c in conjuncts
    ]
    placed = [False] * len(conjuncts)
    in_tree = {order[0]}
    initial = []
    for j, c in enumerate(conjuncts):
        if conjunct_leaves[j] <= in_tree:
            placed[j] = True
            initial.append(c)
    tree = _wrap(leaves[order[0]], initial)
    for i in order[1:]:
        in_tree.add(i)
        attach = [
            j
            for j in range(len(conjuncts))
            if not placed[j] and conjunct_leaves[j] <= in_tree
        ]
        for j in attach:
            placed[j] = True
        if attach:
            tree = Join(tree, leaves[i], _and_all([conjuncts[j] for j in attach]))
        else:
            tree = CrossProduct(tree, leaves[i])
    leftover = [c for j, c in enumerate(conjuncts) if not placed[j]]
    return _wrap(tree, leftover)


# ----------------------------------------------------------------------
# rule 4: ORDER BY + LIMIT fusion
# ----------------------------------------------------------------------
def _fuse_topk(plan: Plan) -> Plan:
    if isinstance(plan, Limit) and isinstance(plan.child, OrderBy):
        inner = plan.child
        _record("topk-fusion")
        return TopK(_fuse_topk(inner.child), inner.keys, inner.descending, plan.n)
    return _rebuild(plan, _fuse_topk)


def _rebuild(plan: Plan, recurse) -> Plan:
    """Rebuild a node with ``recurse`` applied to its children."""
    if isinstance(plan, Selection):
        return Selection(recurse(plan.child), plan.condition)
    if isinstance(plan, Projection):
        return Projection(recurse(plan.child), plan.columns)
    if isinstance(plan, Rename):
        return Rename(recurse(plan.child), plan.mapping_dict())
    if isinstance(plan, Join):
        return Join(recurse(plan.left), recurse(plan.right), plan.condition)
    if isinstance(plan, CrossProduct):
        return CrossProduct(recurse(plan.left), recurse(plan.right))
    if isinstance(plan, Union):
        return Union(recurse(plan.left), recurse(plan.right))
    if isinstance(plan, Difference):
        return Difference(recurse(plan.left), recurse(plan.right))
    if isinstance(plan, Distinct):
        return Distinct(recurse(plan.child))
    if isinstance(plan, Aggregate):
        return Aggregate(recurse(plan.child), plan.group_by, plan.aggregates, plan.having)
    if isinstance(plan, OrderBy):
        return OrderBy(recurse(plan.child), plan.keys, plan.descending)
    if isinstance(plan, Limit):
        return Limit(recurse(plan.child), plan.n)
    if isinstance(plan, TopK):
        return TopK(recurse(plan.child), plan.keys, plan.descending, plan.n)
    return plan


# ----------------------------------------------------------------------
# rule 5: projection pruning
# ----------------------------------------------------------------------
def _prune(plan: Plan, needed: Optional[Set[str]], stats) -> Plan:
    """Drop columns no ancestor references.

    ``needed`` is the set of output attributes ancestors use (``None`` =
    all).  The returned plan's schema is always a superset of ``needed``
    (narrowing inserts pure-column projections, which merge annotations of
    identical tuples — exact in both semantics under the nodes we prune
    through).
    """
    if isinstance(plan, Projection):
        required: Set[str] = set()
        for expr, _name in plan.columns:
            required |= expr.variables()
        return Projection(_prune(plan.child, required, stats), plan.columns)
    if isinstance(plan, Selection):
        child_needed = None if needed is None else needed | plan.condition.variables()
        return Selection(_prune(plan.child, child_needed, stats), plan.condition)
    if isinstance(plan, Rename):
        child_schema = schema_of(plan.child, stats)
        mapping = plan.mapping_dict()
        if needed is None or child_schema is None:
            child_needed = None
        else:
            child_needed = {a for a in child_schema if mapping.get(a, a) in needed}
        child = _prune(plan.child, child_needed, stats)
        # the mapping must only name columns the pruned child still
        # produces — a narrowed child may have dropped a renamed column
        pruned_schema = schema_of(child, stats)
        if pruned_schema is not None:
            mapping = {o: n for o, n in mapping.items() if o in pruned_schema}
        return Rename(child, mapping)
    if isinstance(plan, (Join, CrossProduct)):
        condition_vars = (
            plan.condition.variables() if isinstance(plan, Join) else frozenset()
        )
        total = None if needed is None else needed | condition_vars
        left = _narrow(plan.left, total, stats)
        right = _narrow(plan.right, total, stats)
        if isinstance(plan, Join):
            return Join(left, right, plan.condition)
        return CrossProduct(left, right)
    if isinstance(plan, Aggregate):
        child_needed: Set[str] = set(plan.group_by)
        for spec in plan.aggregates:
            if spec.expr is not None:
                child_needed |= spec.expr.variables()
        return Aggregate(
            _narrow(plan.child, child_needed, stats),
            plan.group_by,
            plan.aggregates,
            plan.having,
        )
    if isinstance(plan, OrderBy):
        child_needed = None if needed is None else needed | set(plan.keys)
        return OrderBy(_prune(plan.child, child_needed, stats), plan.keys, plan.descending)
    # barriers: positional set operations, duplicate elimination, and
    # full-tuple-ordered limits must see every column of their input
    if isinstance(plan, Union):
        return Union(_prune(plan.left, None, stats), _prune(plan.right, None, stats))
    if isinstance(plan, Difference):
        return Difference(
            _prune(plan.left, None, stats), _prune(plan.right, None, stats)
        )
    if isinstance(plan, Distinct):
        return Distinct(_prune(plan.child, None, stats))
    if isinstance(plan, Limit):
        return Limit(_prune(plan.child, None, stats), plan.n)
    if isinstance(plan, TopK):
        return TopK(_prune(plan.child, None, stats), plan.keys, plan.descending, plan.n)
    return plan


def _narrow(plan: Plan, needed: Optional[Set[str]], stats) -> Plan:
    """Prune ``plan`` and, when its schema still has unused columns, wrap
    it in a narrowing projection."""
    pruned = _prune(plan, needed, stats)
    if needed is None:
        return pruned
    schema = schema_of(pruned, stats)
    if schema is None or len(set(schema)) != len(schema):
        return pruned
    kept = [a for a in schema if a in needed]
    if not kept or len(kept) == len(schema):
        return pruned
    if isinstance(pruned, Projection):
        narrowed = [(e, n) for e, n in pruned.columns if n in needed]
        if narrowed:
            if len(narrowed) != len(pruned.columns):
                _record("projection-pruning")
            return Projection(pruned.child, narrowed)
        return pruned
    _record("projection-pruning")
    return Projection(pruned, [(Var(a), a) for a in kept])


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
_CACHE: Dict[tuple, Tuple[Plan, Plan, Tuple[str, ...]]] = {}
_CACHE_LIMIT = 512


def _verify_pass(
    before: Plan, after: Plan, stats: Optional[Statistics], pass_name: str
) -> None:
    """Debug assertion run after one rewrite pass: the rewritten plan
    must still verify, and its output schema (when knowable on both
    sides) must be unchanged."""
    from ..analysis import PlanCompatibilityError, verify_logical

    verify_logical(after, stats)
    old = schema_of(before, stats)
    new = schema_of(after, stats)
    if old is not None and new is not None and old != new:
        raise PlanCompatibilityError(
            f"optimizer pass {pass_name!r} changed the output schema "
            f"from {old} to {new}"
        )


def optimize(
    plan: Plan,
    stats: Optional[Statistics] = None,
    join_order: str = DEFAULT_JOIN_ORDER,
    *,
    semantics: str = "both",
    verify: Optional[bool] = None,
    trace: Optional[List[str]] = None,
) -> Plan:
    """Rewrite ``plan`` into an equivalent, usually cheaper plan.

    Every rewrite is declared in the semiring-safety registry
    (:data:`repro.analysis.lint.REWRITE_RULES`); ``semantics`` says what
    the optimized plan must stay valid for — ``"both"`` (the safe
    default for direct callers) restricts the optimizer to rewrites
    exact under bag (``N``) *and* ``N^AU`` annotation semantics, while
    ``"bag"`` additionally unlocks the bag-only rewrites (selection
    pushdown through ``Distinct`` and into the left input of
    ``Difference``), which the AU engines' SG-combining makes unsound.
    ``stats`` supplies table schemas, cardinalities, and the per-column
    catalog; without it, only rewrites that need no schema knowledge
    (selection splitting, join promotion, OrderBy+Limit fusion) apply.
    ``join_order`` selects the join enumeration strategy: ``"dp"``
    (cost-based bushy trees when column statistics are available, greedy
    otherwise) or ``"greedy"`` (always the PR 1 heuristic).

    ``verify`` turns on the per-pass debug assertion (``None`` defers to
    :func:`repro.analysis.verification_enabled`): after *each* rewrite
    pass the plan is re-verified (:func:`repro.analysis.verify_logical`)
    and its output schema compared, and the recorded rewrite trace is
    checked against the safety registry.  ``trace`` (a caller-supplied
    list) receives the names of the rules that fired — the session layer
    re-checks it against the semantics the plan actually executes under.
    """
    global _ctx
    if join_order not in JOIN_ORDERS:
        raise ValueError(
            f"unknown join_order {join_order!r}; expected one of {JOIN_ORDERS}"
        )
    from ..analysis import check_semiring_safety
    from ..analysis.lint import SEMANTICS

    if semantics not in SEMANTICS:
        raise ValueError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}"
        )
    if verify is None:
        verify = verification_enabled()
    key = (
        id(plan),
        join_order,
        semantics,
        stats.fingerprint() if stats is not None else None,
    )
    hit = _CACHE.get(key)
    if hit is not None and hit[0] is plan:
        if trace is not None:
            trace.extend(hit[2])
        if verify:
            check_semiring_safety(hit[2], semantics)
        return hit[1]
    ctx = _RewriteCtx(semantics)
    _ctx = ctx
    try:
        optimized = _pushdown(plan, [], stats)
        if verify:
            _verify_pass(plan, optimized, stats, "pushdown")
        reordered = _reorder_joins(optimized, stats, join_order)
        if verify:
            _verify_pass(optimized, reordered, stats, "join-reorder")
        fused = _fuse_topk(reordered)
        if verify:
            _verify_pass(reordered, fused, stats, "topk-fusion")
        pruned = _prune(fused, None, stats)
        if verify:
            _verify_pass(fused, pruned, stats, "projection-pruning")
        optimized = pruned
    finally:
        _ctx = None
    if verify:
        check_semiring_safety(ctx.trace, semantics)
    if trace is not None:
        trace.extend(ctx.trace)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = (plan, optimized, tuple(ctx.trace))
    return optimized


# ----------------------------------------------------------------------
# compression-budget placement hints
# ----------------------------------------------------------------------
def compression_hints(
    plan: Plan, stats: Optional[Statistics], budget: Optional[int]
) -> Dict[int, Optional[int]]:
    """Optimizer-aware placement of the join compression budget.

    Maps ``id(join_node)`` to the bucket count the AU evaluator should
    use for that join — ``None`` meaning "skip compression": when both
    estimated inputs already fit within the budget, ``Cpr`` cannot shrink
    anything, so the naive join is at least as fast *and* strictly
    tighter (no split/box loosening).  See
    :func:`repro.core.compression.recommended_buckets` for the policy.
    """
    hints: Dict[int, Optional[int]] = {}
    if budget is None:
        return hints
    for node in plan.walk():
        if isinstance(node, Join):
            left = estimate(node.left, stats)
            right = estimate(node.right, stats)
            hints[id(node)] = recommended_buckets(left, right, budget)
    return hints


# ----------------------------------------------------------------------
# explain
# ----------------------------------------------------------------------
def _describe(plan: Plan) -> str:
    if isinstance(plan, TableRef):
        return f"Table {plan.name}"
    if isinstance(plan, Selection):
        return f"Selection σ[{plan.condition!r}]"
    if isinstance(plan, Projection):
        cols = ", ".join(f"{e!r}→{n}" if repr(e) != n else n for e, n in plan.columns)
        return f"Projection π[{cols}]"
    if isinstance(plan, Join):
        return f"Join ⋈[{plan.condition!r}]"
    if isinstance(plan, CrossProduct):
        return "CrossProduct ×"
    if isinstance(plan, Union):
        return "Union ∪"
    if isinstance(plan, Difference):
        return "Difference −"
    if isinstance(plan, Distinct):
        return "Distinct δ"
    if isinstance(plan, Aggregate):
        aggs = ", ".join(f"{a.kind}({a.expr!r})→{a.name}" for a in plan.aggregates)
        return f"Aggregate γ[{','.join(plan.group_by)}; {aggs}]"
    if isinstance(plan, Rename):
        return f"Rename ρ[{plan.mapping_dict()}]"
    if isinstance(plan, OrderBy):
        order = "desc" if plan.descending else "asc"
        return f"OrderBy [{', '.join(plan.keys)} {order}]"
    if isinstance(plan, Limit):
        return f"Limit [{plan.n}]"
    if isinstance(plan, TopK):
        order = "desc" if plan.descending else "asc"
        return f"TopK [{', '.join(plan.keys)} {order}; n={plan.n}]"
    return type(plan).__name__


def explain(
    plan: Plan,
    stats: Optional[Statistics] = None,
    actuals: Optional[Mapping[int, int]] = None,
) -> str:
    """Render ``plan`` as an indented tree with cardinality estimates.

    ``actuals`` is an optional ``{id(node): rows}`` mapping as collected
    by ``evaluate_det(..., actuals=...)`` / ``evaluate_audb(...,
    actuals=...)``; matching nodes get an ``actual N`` column next to the
    estimate.  Tables missing from the catalog are reported as trailing
    ``!!`` warning lines instead of being silently priced at the default
    cardinality.
    """
    lines: List[str] = []
    warnings: List[str] = []

    def walk(node: Plan, depth: int) -> None:
        est = estimate(node, stats, warnings)
        line = f"{'  ' * depth}{_describe(node)}  (~{est:.0f} rows"
        if actuals is not None and id(node) in actuals:
            line += f", actual {actuals[id(node)]:g}"
        line += ")"
        lines.append(line)
        for child in node.children():
            walk(child, depth + 1)

    walk(plan, 0)
    for warning in warnings:
        lines.append(f"!! {warning}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# delta-plan derivation (incremental view maintenance, repro.ivm)
# ----------------------------------------------------------------------
#: operators that are *linear* in every base relation: both annotation
#: semirings (bag and K^AU) distribute over union, so for these
#: Q(R + ΔR) = Q(R) + Q[R := ΔR] holds exactly (per component for AU
#: triples) as long as no product (join/cross) multiplies a relation
#: with itself.  OrderBy is bag-presentation-only, hence bag-linear.
_LINEAR_NODES = (
    TableRef,
    Selection,
    Projection,
    Rename,
    Join,
    CrossProduct,
    Union,
)
_BAG_LINEAR_NODES = _LINEAR_NODES + (OrderBy,)

#: synthetic table-name prefix for materialized linear segments
DELTA_SEGMENT_PREFIX = "__ivm_seg"


@dataclass(frozen=True)
class DeltaSegment:
    """One incrementally-maintained linear subtree of a view plan.

    ``name`` is the synthetic table the non-linear tail reads it back
    under (empty for the root segment of a fully linear or root-γ
    view).  ``multi_ref`` lists base tables some join/cross inside the
    segment multiplies with themselves — writes to those cannot be
    expressed as a single-sided delta, so they refresh the whole
    segment instead.
    """

    name: str
    plan: Plan
    tables: Tuple[str, ...]
    multi_ref: Tuple[str, ...]


@dataclass(frozen=True)
class DeltaPlan:
    """The maintenance strategy derived from an optimized view plan.

    ``kind`` is the plan-time classification:

    * ``"linear"`` — the whole plan is linear: maintain the result bag
      directly by merging ``Q[R := Δ]`` per write;
    * ``"aggregate"`` — a bag ``Aggregate`` over a linear input:
      maintain per-group semiring partials (the PR 4 partial-aggregate
      accumulator layout) and finalize on read;
    * ``"refresh"`` — a non-linear fragment remains: maintain the
      maximal linear ``segments`` incrementally and re-run ``tail``
      (the refresh boundary, reading segments as synthetic tables)
      epoch-gated at read time.
    """

    view: Plan
    kind: str
    segments: Tuple[DeltaSegment, ...]
    tail: Optional[Plan]
    aggregate: Optional[Aggregate]

    def tables(self) -> Tuple[str, ...]:
        """Every base table whose writes this view must observe."""
        names = []
        for seg in self.segments:
            for t in seg.tables:
                if t not in names:
                    names.append(t)
        if self.tail is not None:
            for t in self.tail.table_names():
                if not t.startswith(DELTA_SEGMENT_PREFIX) and t not in names:
                    names.append(t)
        return tuple(names)


def _self_products(plan: Plan) -> Set[str]:
    """Tables some join/cross product multiplies with themselves."""
    conflicts: Set[str] = set()
    for node in plan.walk():
        if isinstance(node, (Join, CrossProduct)):
            conflicts |= set(node.left.table_names()) & set(
                node.right.table_names()
            )
    return conflicts


def _is_linear(plan: Plan, semantics: str) -> bool:
    nodes = _BAG_LINEAR_NODES if semantics == "bag" else _LINEAR_NODES
    return all(isinstance(n, nodes) for n in plan.walk())


def _segment(name: str, plan: Plan) -> DeltaSegment:
    return DeltaSegment(
        name,
        plan,
        tuple(dict.fromkeys(plan.table_names())),
        tuple(sorted(_self_products(plan))),
    )


def derive_delta(
    plan: Plan,
    stats: Optional[Statistics] = None,
    *,
    semantics: str = "bag",
    trace: Optional[List[str]] = None,
) -> DeltaPlan:
    """Derive the per-write maintenance strategy for ``plan``.

    ``plan`` should be the *optimized*, parameter-free view plan;
    ``semantics`` is ``"bag"`` (deterministic engine) or ``"au"``.  The
    derivation itself is an (exactness-preserving) plan rewrite and is
    recorded in ``trace`` as ``"delta-derivation"`` for the
    semiring-safety lint, like any optimizer rule.
    """
    if trace is not None and "delta-derivation" not in trace:
        trace.append("delta-derivation")

    if _is_linear(plan, semantics):
        return DeltaPlan(plan, "linear", (_segment("", plan),), None, None)

    if (
        semantics == "bag"
        and isinstance(plan, Aggregate)
        and _is_linear(plan.child, semantics)
    ):
        return DeltaPlan(
            plan, "aggregate", (_segment("", plan.child),), None, plan
        )

    # non-linear fragment: carve out maximal linear subtrees as
    # incrementally-maintained materializations; the remaining tail —
    # the refresh boundary — re-executes over them at read time
    segments: List[DeltaSegment] = []

    def carve(node: Plan) -> Plan:
        if _is_linear(node, semantics):
            if isinstance(node, TableRef):
                return node  # the tail reads base tables directly
            schema = schema_of(node, stats)
            if schema is not None and len(set(schema)) == len(schema):
                name = f"{DELTA_SEGMENT_PREFIX}{len(segments)}"
                segments.append(_segment(name, node))
                return TableRef(name)
            # unmaterializable schema (unknown / duplicate attribute
            # names): leave the subtree inside the tail
            return node
        return _rebuild(node, carve)

    tail = carve(plan)
    return DeltaPlan(plan, "refresh", tuple(segments), tail, None)
