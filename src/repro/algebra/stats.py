"""Per-column statistics and selectivity estimation for the cost-based optimizer.

The plan optimizer of PR 1 knew one number per table (its cardinality),
which is enough to order a greedy join but not to compare join *trees*.
This module supplies the attribute-level information the DP enumerator in
:mod:`repro.algebra.optimizer` costs plans with:

* :class:`ColumnStats` — distinct count, min/max bounds, null fraction,
  uncertain fraction, average range width, and (for numeric columns) an
  equi-width :class:`Histogram` of one column;
* :func:`harvest_column_stats` — one-pass harvesting from either storage
  layer.  Deterministic relations (:class:`~repro.db.storage.DetRelation`)
  contribute exact values; AU-relations
  (:class:`~repro.core.relation.AURelation`) summarize their
  range-annotated values (min over lower bounds, max over upper bounds,
  distinct over selected-guess values) so the same catalog drives
  planning for both engines;
* :func:`predicate_selectivity` / :func:`equi_join_selectivity` —
  System-R style estimates derived from those columns.  Estimates are
  always clamped to ``[0, 1]``; on key–foreign-key equi-joins with
  uniform distinct counts the join-size estimate
  ``|R|·|S| / max(d_R, d_S)`` is exact.

Uncertainty awareness: a predicate over an uncertain attribute cannot
soundly drop the tuple (the AU engine keeps every *possibly* matching
row), so atom selectivities are inflated by the column's uncertain
fraction — deterministic columns (uncertain fraction 0) are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional

from ..core.expressions import (
    And,
    Const,
    Eq,
    Expression,
    Geq,
    Gt,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Var,
)
from ..core.ranges import RangeValue, domain_key

__all__ = [
    "ColumnStats",
    "Histogram",
    "harvest_column_stats",
    "predicate_selectivity",
    "equi_join_selectivity",
    "DEFAULT_SELECTIVITY",
    "HISTOGRAM_BUCKETS",
]

#: Fallback selectivity for predicates the estimator cannot analyze —
#: matches the pre-catalog heuristic of one third of the input surviving.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Equi-width bucket count harvested per numeric column.
HISTOGRAM_BUCKETS = 16


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` is the (multiplicity-weighted) number of values in the
    ``i``-th of ``len(counts)`` equal-width buckets spanning
    ``[lo, hi]``.  Built over the selected-guess values of a column, so
    the same histogram prices range predicates for both engines (the
    uncertain-fraction inflation in :func:`predicate_selectivity`
    accounts for range-annotated values separately).
    """

    lo: float
    hi: float
    counts: Tuple[int, ...]

    @classmethod
    def build(
        cls, values: List[Tuple[float, int]], buckets: int = HISTOGRAM_BUCKETS
    ) -> Optional["Histogram"]:
        """Build from weighted ``(value, weight)`` pairs.

        Returns ``None`` for degenerate inputs (no values, or a single
        point — min/max logic handles those better).
        """
        if not values:
            return None
        lo = min(v for v, _w in values)
        hi = max(v for v, _w in values)
        if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
            return None
        counts = [0] * buckets
        scale = buckets / (hi - lo)
        top = buckets - 1
        for v, w in values:
            i = int((v - lo) * scale)
            counts[i if i < top else top] += w
        return cls(float(lo), float(hi), tuple(counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, c: float) -> float:
        """Estimated fraction of values ``<= c`` (continuous
        approximation: linear interpolation inside the bucket containing
        ``c``, so strict vs non-strict comparisons price the same)."""
        if c <= self.lo:
            return 0.0
        if c >= self.hi:
            return 1.0
        total = self.total
        if total <= 0:
            return 0.0
        width = (self.hi - self.lo) / len(self.counts)
        position = (c - self.lo) / width
        full = int(position)
        below = sum(self.counts[:full])
        if full < len(self.counts):
            below += self.counts[full] * (position - full)
        return min(1.0, max(0.0, below / total))

    def fingerprint(self) -> tuple:
        return (self.lo, self.hi, self.counts)


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of a single column.

    ``count`` is the number of rows observed (bag cardinality for
    deterministic relations, tuple count for AU-relations — matching how
    :class:`~repro.algebra.optimizer.Statistics` counts table rows).
    ``min_value`` / ``max_value`` are the extreme *bounds* under the
    universal domain order: for AU columns the minimum lower bound and
    maximum upper bound, so every possible value of the column falls in
    ``[min_value, max_value]``.  ``distinct`` counts distinct non-null
    (selected-guess) values.  ``avg_width`` is the mean numeric range
    width (0 for deterministic columns).
    """

    count: int = 0
    distinct: int = 0
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0
    uncertain_fraction: float = 0.0
    avg_width: float = 0.0
    #: equi-width histogram over the column's numeric SG values, or
    #: ``None`` for non-numeric / degenerate columns (range predicates
    #: then fall back to min/max interpolation)
    histogram: Optional[Histogram] = None

    def scaled(self, selectivity: float) -> "ColumnStats":
        """Statistics after a filter keeping ``selectivity`` of the rows.

        Distinct values shrink proportionally (uniformity assumption) but
        never below 1 while rows remain; bounds, fractions, and the
        histogram are kept — conservative, since a filter on *another*
        column approximately preserves this column's value distribution.
        """
        s = min(1.0, max(0.0, selectivity))
        count = int(math.ceil(self.count * s))
        distinct = min(self.distinct, max(1, int(math.ceil(self.distinct * s))))
        if count == 0:
            distinct = 0
        return replace(self, count=count, distinct=distinct)

    def capped(self, rows: float) -> "ColumnStats":
        """Cap the distinct count at an output cardinality estimate."""
        limit = max(1, int(rows))
        if self.distinct <= limit:
            return self
        return replace(self, distinct=limit)

    def fingerprint(self) -> tuple:
        return (
            self.count,
            self.distinct,
            repr(self.min_value),
            repr(self.max_value),
            round(self.null_fraction, 9),
            round(self.uncertain_fraction, 9),
            round(self.avg_width, 9),
            self.histogram.fingerprint() if self.histogram else None,
        )


# ----------------------------------------------------------------------
# harvesting
# ----------------------------------------------------------------------
_UNSET = object()


def harvest_column_stats(db) -> Dict[str, Dict[str, ColumnStats]]:
    """Harvest per-column statistics for every relation of ``db``.

    Works for both storage layers: anything exposing ``.relations`` whose
    values have a ``.schema`` and ``.tuples()`` yielding either
    ``(row, multiplicity)`` (deterministic) or ``(au_tuple, (lb, sg, ub))``
    (AU) pairs.
    """
    return {
        name: _harvest_relation(rel)
        for name, rel in getattr(db, "relations", {}).items()
    }


def _harvest_relation(rel) -> Dict[str, ColumnStats]:
    # both storage layers memoize the harvest and invalidate on add(),
    # so repeated evaluations over the same database pay it once
    cached = getattr(rel, "_column_stats_cache", None)
    if cached is not None:
        return cached
    schema = tuple(rel.schema)
    n = len(schema)
    total = 0
    nulls = [0] * n
    uncertain = [0] * n
    width_sum = [0.0] * n
    width_n = [0] * n
    distinct: List[set] = [set() for _ in range(n)]
    mins: List[Any] = [_UNSET] * n
    maxs: List[Any] = [_UNSET] * n
    # weighted numeric SG samples per column (None once a non-numeric
    # value disqualifies the column from getting a histogram)
    numeric: List[Optional[List[Tuple[float, int]]]] = [[] for _ in range(n)]

    for t, annotation in rel.tuples():
        # AU annotations are (lb, sg, ub) triples counted per tuple;
        # deterministic annotations are integer multiplicities.
        weight = 1 if isinstance(annotation, tuple) else annotation
        total += weight
        for i, value in enumerate(t):
            if isinstance(value, RangeValue):
                sg, lb, ub = value.sg, value.lb, value.ub
                if not value.is_certain:
                    uncertain[i] += weight
                w = value.width()
                if math.isfinite(w):
                    width_sum[i] += w * weight
                    width_n[i] += weight
            else:
                sg = lb = ub = value
                width_n[i] += weight
            if sg is None:
                nulls[i] += weight
                continue
            if numeric[i] is not None:
                if isinstance(sg, (int, float)) and not isinstance(sg, bool):
                    numeric[i].append((sg, weight))
                else:
                    numeric[i] = None
            distinct[i].add(domain_key(sg))
            if mins[i] is _UNSET:
                mins[i], maxs[i] = lb, ub
            else:
                if domain_key(lb) < domain_key(mins[i]):
                    mins[i] = lb
                if domain_key(ub) > domain_key(maxs[i]):
                    maxs[i] = ub

    out: Dict[str, ColumnStats] = {}
    for i, name in enumerate(schema):
        out[name] = ColumnStats(
            count=total,
            distinct=len(distinct[i]),
            min_value=None if mins[i] is _UNSET else mins[i],
            max_value=None if maxs[i] is _UNSET else maxs[i],
            null_fraction=nulls[i] / total if total else 0.0,
            uncertain_fraction=uncertain[i] / total if total else 0.0,
            avg_width=width_sum[i] / width_n[i] if width_n[i] else 0.0,
            histogram=Histogram.build(numeric[i]) if numeric[i] else None,
        )
    try:
        rel._column_stats_cache = out
    except AttributeError:
        pass  # duck-typed relation without the cache slot
    return out


# ----------------------------------------------------------------------
# selectivity estimation
# ----------------------------------------------------------------------
def equi_join_selectivity(
    left: Optional[ColumnStats], right: Optional[ColumnStats]
) -> float:
    """Selectivity of ``R.a = S.b`` — ``1 / max(d_a, d_b)``.

    With uniform values and containment of the smaller key set in the
    larger (the key–foreign-key case) this makes ``|R|·|S| · sel`` exact.
    Unknown columns fall back to :data:`DEFAULT_SELECTIVITY`.
    """
    d = max(
        left.distinct if left is not None else 0,
        right.distinct if right is not None else 0,
    )
    if d <= 0:
        return DEFAULT_SELECTIVITY
    return min(1.0, 1.0 / d)


def predicate_selectivity(
    condition: Expression, columns: Mapping[str, ColumnStats]
) -> float:
    """Estimated fraction of rows satisfying ``condition``, in ``[0, 1]``."""
    return min(1.0, max(0.0, _sel(condition, columns)))


def _sel(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    if isinstance(cond, And):
        return _clamp(_sel(cond.left, columns)) * _clamp(_sel(cond.right, columns))
    if isinstance(cond, Or):
        a = _clamp(_sel(cond.left, columns))
        b = _clamp(_sel(cond.right, columns))
        return a + b - a * b
    if isinstance(cond, Not):
        return 1.0 - _clamp(_sel(cond.operand, columns))
    if isinstance(cond, Const):
        return 1.0 if bool(cond.value) else 0.0
    base = _clamp(_atom(cond, columns))
    # a predicate over uncertain attributes keeps every possibly-matching
    # row, so inflate by the uncertain fraction of the involved columns
    u = 0.0
    for v in cond.variables():
        col = columns.get(v)
        if col is not None and col.uncertain_fraction > u:
            u = col.uncertain_fraction
    return base + u * (1.0 - base)


def _clamp(s: float) -> float:
    return min(1.0, max(0.0, s))


def _atom(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    if isinstance(cond, Eq):
        return _eq_selectivity(cond, columns)
    if isinstance(cond, Neq):
        return 1.0 - _eq_selectivity(Eq(cond.left, cond.right), columns)
    if isinstance(cond, (Leq, Lt, Geq, Gt)):
        return _range_selectivity(cond, columns)
    if isinstance(cond, IsNull) and isinstance(cond.operand, Var):
        col = columns.get(cond.operand.name)
        if col is not None:
            return col.null_fraction
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _eq_selectivity(cond: Eq, columns: Mapping[str, ColumnStats]) -> float:
    left, right = cond.left, cond.right
    if isinstance(left, Var) and isinstance(right, Var):
        return equi_join_selectivity(columns.get(left.name), columns.get(right.name))
    var, const = _var_const(left, right)
    if var is None:
        return DEFAULT_SELECTIVITY
    col = columns.get(var)
    if col is None or col.distinct <= 0:
        return DEFAULT_SELECTIVITY
    if _is_number(const) and _is_number(col.min_value) and _is_number(col.max_value):
        if const < col.min_value or const > col.max_value:
            return 0.0
    return 1.0 / col.distinct


def _range_selectivity(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    """Distribution estimate for ``x ⊙ c`` over numeric columns.

    With a harvested :class:`Histogram` the estimate is the actual
    cumulative fraction below/above ``c`` (robust to skew); otherwise it
    falls back to linear interpolation between the column's min/max
    bounds (implicitly assuming uniformity).
    """
    left, right = cond.left, cond.right
    if isinstance(left, Var) and isinstance(right, Const):
        var, const, flipped = left.name, right.value, False
    elif isinstance(left, Const) and isinstance(right, Var):
        var, const, flipped = right.name, left.value, True
    else:
        return DEFAULT_SELECTIVITY
    col = columns.get(var)
    if col is None or not _is_number(const):
        return DEFAULT_SELECTIVITY
    # ``c ⊙ x`` is ``x ⊙' c`` with the comparison mirrored
    below = isinstance(cond, (Leq, Lt)) != flipped  # keeps x <= / < c
    if col.histogram is not None:
        frac = col.histogram.fraction_below(float(const))
        return _clamp(frac if below else 1.0 - frac)
    if not _is_number(col.min_value) or not _is_number(col.max_value):
        return DEFAULT_SELECTIVITY
    lo, hi = float(col.min_value), float(col.max_value)
    if hi <= lo:
        point = lo
        if below:
            return 1.0 if point <= const else 0.0
        return 1.0 if point >= const else 0.0
    if below:
        frac = (float(const) - lo) / (hi - lo)
    else:
        frac = (hi - float(const)) / (hi - lo)
    return _clamp(frac)


def _var_const(a: Expression, b: Expression):
    if isinstance(a, Var) and isinstance(b, Const):
        return a.name, b.value
    if isinstance(b, Var) and isinstance(a, Const):
        return b.name, a.value
    return None, None


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)
