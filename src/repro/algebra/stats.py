"""Per-column statistics and selectivity estimation for the cost-based optimizer.

The plan optimizer of PR 1 knew one number per table (its cardinality),
which is enough to order a greedy join but not to compare join *trees*.
This module supplies the attribute-level information the DP enumerator in
:mod:`repro.algebra.optimizer` costs plans with:

* :class:`ColumnStats` — distinct count, min/max bounds, null fraction,
  uncertain fraction, average range width, and (for numeric columns) an
  equi-width :class:`Histogram` of one column;
* :func:`harvest_column_stats` — one-pass harvesting from either storage
  layer.  Deterministic relations (:class:`~repro.db.storage.DetRelation`)
  contribute exact values; AU-relations
  (:class:`~repro.core.relation.AURelation`) summarize their
  range-annotated values (min over lower bounds, max over upper bounds,
  distinct over selected-guess values) so the same catalog drives
  planning for both engines;
* :func:`predicate_selectivity` / :func:`equi_join_selectivity` —
  System-R style estimates derived from those columns.  Estimates are
  always clamped to ``[0, 1]``; on key–foreign-key equi-joins with
  uniform distinct counts the join-size estimate
  ``|R|·|S| / max(d_R, d_S)`` is exact.

Uncertainty awareness: a predicate over an uncertain attribute cannot
soundly drop the tuple (the AU engine keeps every *possibly* matching
row), so atom selectivities are inflated by the column's uncertain
fraction — deterministic columns (uncertain fraction 0) are unaffected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.expressions import (
    And,
    Const,
    Eq,
    Expression,
    Geq,
    Gt,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Var,
)
from ..core.ranges import RangeValue, domain_key
from .. import telemetry as _tm

# process-wide accumulator counters (repro.telemetry registry): how much
# incremental statistics work the write path does, and how often the
# incremental state was invalid and a harvest fell back to a full rescan
_OBSERVES = _tm.get_registry().counter(
    "repro_stats_observes_total",
    "Rows folded into incremental statistics accumulators.",
)
_RESCANS = _tm.get_registry().counter(
    "repro_stats_rescans_total",
    "Statistics harvests that fell back to a full relation rescan.",
)

__all__ = [
    "ColumnStats",
    "Histogram",
    "StatsAccumulator",
    "harvest_column_stats",
    "predicate_selectivity",
    "equi_join_selectivity",
    "adaptive_morsel_count",
    "DEFAULT_SELECTIVITY",
    "HISTOGRAM_BUCKETS",
    "MORSEL_TARGET_ROWS",
]

#: Rows of driver-scan input one parallel morsel should carry: small
#: enough for load balancing across workers, large enough that per-
#: morsel fork/merge overhead stays negligible.
MORSEL_TARGET_ROWS = 2048.0


def adaptive_morsel_count(
    cardinality: float,
    parallelism: int,
    target_rows: float = MORSEL_TARGET_ROWS,
) -> int:
    """Morsel count for a parallel region, from catalog cardinalities.

    Splitting a small driver table into ``parallelism`` morsels buys
    nothing but fork and merge overhead; this sizes the region to
    ``⌈cardinality / target_rows⌉`` morsels, clamped to ``[2,
    parallelism]`` (an :class:`~repro.exec.physical.Exchange` region
    needs at least two morsels to exist at all).
    """
    if parallelism <= 1:
        return max(1, parallelism)
    if target_rows <= 0:
        return parallelism
    want = math.ceil(max(0.0, cardinality) / target_rows)
    return int(max(2, min(parallelism, want)))

#: Fallback selectivity for predicates the estimator cannot analyze —
#: matches the pre-catalog heuristic of one third of the input surviving.
DEFAULT_SELECTIVITY = 1.0 / 3.0

#: Equi-width bucket count harvested per numeric column.
HISTOGRAM_BUCKETS = 16

#: Per-column cap on the weighted samples a :class:`StatsAccumulator`
#: retains for histogram rebuilds.  Columns past the cap drop their
#: samples after each (re)build — in-place bucket maintenance continues
#: exactly, and the rare out-of-range write then falls back to a full
#: relation rescan instead of a rebuild-from-samples.  Bounds a
#: long-lived serving connection's memory at O(cap) per numeric column
#: rather than O(total writes).
HISTOGRAM_SAMPLE_CAP = 100_000


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` is the (multiplicity-weighted) number of values in the
    ``i``-th of ``len(counts)`` equal-width buckets spanning
    ``[lo, hi]``.  Built over the selected-guess values of a column, so
    the same histogram prices range predicates for both engines (the
    uncertain-fraction inflation in :func:`predicate_selectivity`
    accounts for range-annotated values separately).
    """

    lo: float
    hi: float
    counts: Tuple[int, ...]

    @classmethod
    def build(
        cls, values: List[Tuple[float, int]], buckets: int = HISTOGRAM_BUCKETS
    ) -> Optional["Histogram"]:
        """Build from weighted ``(value, weight)`` pairs.

        Returns ``None`` for degenerate inputs (no values, or a single
        point — min/max logic handles those better).
        """
        if not values:
            return None
        lo = min(v for v, _w in values)
        hi = max(v for v, _w in values)
        if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
            return None
        counts = [0] * buckets
        scale = buckets / (hi - lo)
        top = buckets - 1
        for v, w in values:
            i = int((v - lo) * scale)
            counts[i if i < top else top] += w
        return cls(float(lo), float(hi), tuple(counts))

    @property
    def total(self) -> int:
        return sum(self.counts)

    def fraction_below(self, c: float) -> float:
        """Estimated fraction of values ``<= c`` (continuous
        approximation: linear interpolation inside the bucket containing
        ``c``, so strict vs non-strict comparisons price the same)."""
        if c <= self.lo:
            return 0.0
        if c >= self.hi:
            return 1.0
        total = self.total
        if total <= 0:
            return 0.0
        width = (self.hi - self.lo) / len(self.counts)
        position = (c - self.lo) / width
        full = int(position)
        below = sum(self.counts[:full])
        if full < len(self.counts):
            below += self.counts[full] * (position - full)
        return min(1.0, max(0.0, below / total))

    def fingerprint(self) -> tuple:
        return (self.lo, self.hi, self.counts)


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics of a single column.

    ``count`` is the number of rows observed (bag cardinality for
    deterministic relations, tuple count for AU-relations — matching how
    :class:`~repro.algebra.optimizer.Statistics` counts table rows).
    ``min_value`` / ``max_value`` are the extreme *bounds* under the
    universal domain order: for AU columns the minimum lower bound and
    maximum upper bound, so every possible value of the column falls in
    ``[min_value, max_value]``.  ``distinct`` counts distinct non-null
    (selected-guess) values.  ``avg_width`` is the mean numeric range
    width (0 for deterministic columns).
    """

    count: int = 0
    distinct: int = 0
    min_value: Any = None
    max_value: Any = None
    null_fraction: float = 0.0
    uncertain_fraction: float = 0.0
    avg_width: float = 0.0
    #: equi-width histogram over the column's numeric SG values, or
    #: ``None`` for non-numeric / degenerate columns (range predicates
    #: then fall back to min/max interpolation)
    histogram: Optional[Histogram] = None

    def scaled(self, selectivity: float) -> "ColumnStats":
        """Statistics after a filter keeping ``selectivity`` of the rows.

        Distinct values shrink proportionally (uniformity assumption) but
        never below 1 while rows remain; bounds, fractions, and the
        histogram are kept — conservative, since a filter on *another*
        column approximately preserves this column's value distribution.
        """
        s = min(1.0, max(0.0, selectivity))
        count = int(math.ceil(self.count * s))
        distinct = min(self.distinct, max(1, int(math.ceil(self.distinct * s))))
        if count == 0:
            distinct = 0
        return replace(self, count=count, distinct=distinct)

    def capped(self, rows: float) -> "ColumnStats":
        """Cap the distinct count at an output cardinality estimate."""
        limit = max(1, int(rows))
        if self.distinct <= limit:
            return self
        return replace(self, distinct=limit)

    def fingerprint(self) -> tuple:
        return (
            self.count,
            self.distinct,
            repr(self.min_value),
            repr(self.max_value),
            round(self.null_fraction, 9),
            round(self.uncertain_fraction, 9),
            round(self.avg_width, 9),
            self.histogram.fingerprint() if self.histogram else None,
        )


# ----------------------------------------------------------------------
# harvesting (one-pass initial scan + incremental maintenance)
# ----------------------------------------------------------------------
_UNSET = object()


class StatsAccumulator:
    """Incrementally maintainable harvest state for one relation.

    The initial harvest feeds every tuple through :meth:`observe`; after
    that, the storage layers (``DetRelation.add`` / ``AURelation.add``)
    keep the accumulator current by observing each write instead of
    throwing the whole harvest away.  All maintained quantities are
    *add-only exact*: counts, null/uncertain counters, width sums, and
    the per-column distinct sketches (plain sets of domain keys — exact,
    so the documented "sketch tolerance" for distinct counts is
    currently zero; a lossy sketch may replace them if memory ever
    becomes the constraint) absorb a write in O(columns), min/max bounds
    only ever widen, and histogram *bucket counters* are bumped in place
    while the new value lies inside the built range.  A value outside
    the range only dirties the histogram: :meth:`finalize` then rebuilds
    it from the retained weighted samples — the rebuild fallback —
    without rescanning the relation.  Sample retention is bounded
    (:data:`HISTOGRAM_SAMPLE_CAP` per column): columns past the cap
    drop their samples after each build and flag ``rescan_needed`` when
    an out-of-range write would need them, so
    :func:`_harvest_relation` falls back to a full rescan only when no
    accumulator is cached, the schema changed under it, or a capped
    column's histogram range grew.

    ``finalize`` snapshots the state into immutable
    :class:`ColumnStats`, bit-identical to what a from-scratch harvest
    of the same rows would produce (``tests/test_stats.py`` holds a
    Hypothesis property to that effect).
    """

    __slots__ = (
        "schema", "total", "nulls", "uncertain", "width_sum", "width_n",
        "distinct", "mins", "maxs", "numeric_ok", "samples", "hist_lo",
        "hist_hi", "hist_counts", "hist_dirty", "rescan_needed", "deletes",
    )

    def __init__(self, schema) -> None:
        self.schema = tuple(schema)
        n = len(self.schema)
        self.total = 0
        self.nulls = [0] * n
        self.uncertain = [0] * n
        self.width_sum = [0.0] * n
        self.width_n = [0] * n
        self.distinct: List[set] = [set() for _ in range(n)]
        self.mins: List[Any] = [_UNSET] * n
        self.maxs: List[Any] = [_UNSET] * n
        # histogram eligibility (False once a non-numeric value
        # disqualifies the column) and the weighted numeric SG samples
        # kept so an out-of-range write can rebuild the histogram
        # without rescanning the relation; samples are dropped (None)
        # once a column exceeds HISTOGRAM_SAMPLE_CAP — see finalize()
        self.numeric_ok = [True] * n
        self.samples: List[Optional[List[Tuple[float, int]]]] = [
            [] for _ in range(n)
        ]
        # built histogram state per column (bucket counters maintained
        # in place while values stay inside [hist_lo, hist_hi])
        self.hist_lo: List[float] = [0.0] * n
        self.hist_hi: List[float] = [0.0] * n
        self.hist_counts: List[Optional[List[int]]] = [None] * n
        self.hist_dirty = [True] * n
        #: set when an out-of-range write hits a column whose samples
        #: were dropped: only a full relation rescan can rebuild then
        self.rescan_needed = False
        #: deleted row weight, counted *separately* from the insert
        #: stream: a delete shrinks distributions in ways an insert
        #: cannot, so staleness heuristics must not net it against
        #: inserts (a delete-heavy stream would otherwise look idle)
        self.deletes = 0

    def observe(self, t, annotation) -> None:
        """Fold one stored row into the running statistics.

        ``annotation`` is an integer multiplicity (deterministic
        storage; the *delta* being added, so duplicate-row adds fold
        correctly) or an ``(lb, sg, ub)`` triple (AU storage — counted
        as one tuple, and only for tuples not previously present:
        annotation merges leave the value distribution untouched).
        """
        _OBSERVES.inc()
        weight = 1 if isinstance(annotation, tuple) else annotation
        self.total += weight
        for i, value in enumerate(t):
            if isinstance(value, RangeValue):
                sg, lb, ub = value.sg, value.lb, value.ub
                if not value.is_certain:
                    self.uncertain[i] += weight
                w = value.width()
                if math.isfinite(w):
                    self.width_sum[i] += w * weight
                    self.width_n[i] += weight
            else:
                sg = lb = ub = value
                self.width_n[i] += weight
            if sg is None:
                self.nulls[i] += weight
                continue
            if self.numeric_ok[i]:
                if isinstance(sg, (int, float)) and not isinstance(sg, bool):
                    if self.samples[i] is not None:
                        self.samples[i].append((sg, weight))
                    self._observe_histogram(i, sg, weight)
                    if self.hist_dirty[i] and self.samples[i] is None:
                        # the range grew past a capped column's build:
                        # no samples to rebuild from — rescan instead
                        self.rescan_needed = True
                else:
                    self.numeric_ok[i] = False
                    self.samples[i] = None
                    self.hist_counts[i] = None
                    self.hist_dirty[i] = False
            self.distinct[i].add(domain_key(sg))
            if self.mins[i] is _UNSET:
                self.mins[i], self.maxs[i] = lb, ub
            else:
                if domain_key(lb) < domain_key(self.mins[i]):
                    self.mins[i] = lb
                if domain_key(ub) > domain_key(self.maxs[i]):
                    self.maxs[i] = ub

    def observe_delete(self, t, weight: int) -> None:
        """Fold one *deleted* row out of the running statistics.

        Counters that are exactly invertible (total, nulls, uncertain,
        width sums, in-range histogram buckets) are decremented in
        place; quantities that can only shrink under deletion (min/max
        bounds, distinct sketches, out-of-range histogram state) flag
        ``rescan_needed`` instead of guessing, so the next harvest
        rescans.  ``weight`` is the deleted multiplicity (1 for an AU
        tuple removal).  Deleted weight also accumulates in
        :attr:`deletes` — separately from :attr:`total` — so staleness
        heuristics can see a delete-heavy stream for what it is.
        """
        self.total -= weight
        self.deletes += weight
        for i, value in enumerate(t):
            if isinstance(value, RangeValue):
                sg, lb, ub = value.sg, value.lb, value.ub
                if not value.is_certain:
                    self.uncertain[i] -= weight
                w = value.width()
                if math.isfinite(w):
                    self.width_sum[i] -= w * weight
                    self.width_n[i] -= weight
            else:
                sg = lb = ub = value
                self.width_n[i] -= weight
            if sg is None:
                self.nulls[i] -= weight
                continue
            if self.numeric_ok[i]:
                if isinstance(sg, (int, float)) and not isinstance(sg, bool):
                    # retained samples now over-count: they cannot seed
                    # a rebuild any more, only a rescan can
                    self.samples[i] = None
                    counts = self.hist_counts[i]
                    if counts is not None and not self.hist_dirty[i]:
                        lo, hi = self.hist_lo[i], self.hist_hi[i]
                        if lo <= sg <= hi:
                            buckets = len(counts)
                            j = int((sg - lo) * (buckets / (hi - lo)))
                            top = buckets - 1
                            counts[j if j < top else top] -= weight
                        else:
                            self.hist_dirty[i] = True
                            self.rescan_needed = True
                    elif self.hist_dirty[i]:
                        self.rescan_needed = True
            # the distinct sketch stays a superset; min/max can only
            # shrink, so a delete touching a boundary forces a rescan
            if self.mins[i] is not _UNSET:
                if (
                    domain_key(lb) <= domain_key(self.mins[i])
                    or domain_key(ub) >= domain_key(self.maxs[i])
                ):
                    self.rescan_needed = True

    def _observe_histogram(self, i: int, v: float, weight: int) -> None:
        counts = self.hist_counts[i]
        if counts is None or self.hist_dirty[i]:
            return  # nothing built yet / already awaiting rebuild
        lo, hi = self.hist_lo[i], self.hist_hi[i]
        if lo <= v <= hi:
            # same bucket-assignment arithmetic as Histogram.build, so
            # the counters stay bit-identical to a from-scratch build
            buckets = len(counts)
            j = int((v - lo) * (buckets / (hi - lo)))
            top = buckets - 1
            counts[j if j < top else top] += weight
        else:
            self.hist_dirty[i] = True  # range grew: rebuild at finalize

    def _finalize_histogram(self, i: int) -> Optional[Histogram]:
        if not self.numeric_ok[i]:
            return None
        samples = self.samples[i]
        if self.hist_dirty[i]:
            if not samples:
                # dropped (rescan_needed drives a full rescan) or empty
                return None
            built = Histogram.build(samples)
            if built is None:
                # degenerate (single point / non-finite): stay dirty so
                # future observes re-attempt once the range widens —
                # unless the column is past the sample cap, where
                # re-attempting would mean rescanning on every write;
                # such columns retire to min/max interpolation
                self.hist_counts[i] = None
                if len(samples) > HISTOGRAM_SAMPLE_CAP:
                    self.numeric_ok[i] = False
                    self.samples[i] = None
                    self.hist_dirty[i] = False
                return None
            self.hist_lo[i], self.hist_hi[i] = built.lo, built.hi
            self.hist_counts[i] = list(built.counts)
            self.hist_dirty[i] = False
            if len(samples) > HISTOGRAM_SAMPLE_CAP:
                self.samples[i] = None  # bound memory; rescan on regrow
            return built
        counts = self.hist_counts[i]
        if counts is None:
            return None
        if samples is not None and len(samples) > HISTOGRAM_SAMPLE_CAP:
            self.samples[i] = None
        return Histogram(self.hist_lo[i], self.hist_hi[i], tuple(counts))

    def finalize(self) -> Dict[str, ColumnStats]:
        """Snapshot the running state into per-column :class:`ColumnStats`."""
        total = self.total
        out: Dict[str, ColumnStats] = {}
        for i, name in enumerate(self.schema):
            out[name] = ColumnStats(
                count=total,
                distinct=len(self.distinct[i]),
                min_value=None if self.mins[i] is _UNSET else self.mins[i],
                max_value=None if self.maxs[i] is _UNSET else self.maxs[i],
                null_fraction=self.nulls[i] / total if total else 0.0,
                uncertain_fraction=(
                    self.uncertain[i] / total if total else 0.0
                ),
                avg_width=(
                    self.width_sum[i] / self.width_n[i]
                    if self.width_n[i]
                    else 0.0
                ),
                histogram=self._finalize_histogram(i),
            )
        return out


def harvest_column_stats(db) -> Dict[str, Dict[str, ColumnStats]]:
    """Harvest per-column statistics for every relation of ``db``.

    Works for both storage layers: anything exposing ``.relations`` whose
    values have a ``.schema`` and ``.tuples()`` yielding either
    ``(row, multiplicity)`` (deterministic) or ``(au_tuple, (lb, sg, ub))``
    (AU) pairs.
    """
    return {
        name: _harvest_relation(rel)
        for name, rel in getattr(db, "relations", {}).items()
    }


def _harvest_relation(rel) -> Dict[str, ColumnStats]:
    # both storage layers memoize the harvest; add() keeps the
    # accumulator current incrementally (see StatsAccumulator) and only
    # drops the finalized snapshot, so repeated harvests between writes
    # are O(columns), not O(rows)
    cached = getattr(rel, "_column_stats_cache", None)
    if cached is not None:
        return cached
    acc = getattr(rel, "_stats_acc", None)
    if (
        acc is None
        or acc.schema != tuple(rel.schema)
        or acc.rescan_needed
    ):
        # rebuild fallback: no (valid) incremental state — full rescan
        _RESCANS.inc()
        acc = StatsAccumulator(rel.schema)
        for t, annotation in rel.tuples():
            acc.observe(t, annotation)
        try:
            rel._stats_acc = acc
        except AttributeError:
            pass  # duck-typed relation without the slot
    out = acc.finalize()
    try:
        rel._column_stats_cache = out
    except AttributeError:
        pass  # duck-typed relation without the cache slot
    return out


# ----------------------------------------------------------------------
# selectivity estimation
# ----------------------------------------------------------------------
def equi_join_selectivity(
    left: Optional[ColumnStats], right: Optional[ColumnStats]
) -> float:
    """Selectivity of ``R.a = S.b`` — ``1 / max(d_a, d_b)``.

    With uniform values and containment of the smaller key set in the
    larger (the key–foreign-key case) this makes ``|R|·|S| · sel`` exact.
    Unknown columns fall back to :data:`DEFAULT_SELECTIVITY`.
    """
    d = max(
        left.distinct if left is not None else 0,
        right.distinct if right is not None else 0,
    )
    if d <= 0:
        return DEFAULT_SELECTIVITY
    return min(1.0, 1.0 / d)


def predicate_selectivity(
    condition: Expression, columns: Mapping[str, ColumnStats]
) -> float:
    """Estimated fraction of rows satisfying ``condition``, in ``[0, 1]``."""
    return min(1.0, max(0.0, _sel(condition, columns)))


def _sel(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    if isinstance(cond, And):
        return _clamp(_sel(cond.left, columns)) * _clamp(_sel(cond.right, columns))
    if isinstance(cond, Or):
        a = _clamp(_sel(cond.left, columns))
        b = _clamp(_sel(cond.right, columns))
        return a + b - a * b
    if isinstance(cond, Not):
        return 1.0 - _clamp(_sel(cond.operand, columns))
    if isinstance(cond, Const):
        return 1.0 if bool(cond.value) else 0.0
    base = _clamp(_atom(cond, columns))
    # a predicate over uncertain attributes keeps every possibly-matching
    # row, so inflate by the uncertain fraction of the involved columns
    u = 0.0
    for v in cond.variables():
        col = columns.get(v)
        if col is not None and col.uncertain_fraction > u:
            u = col.uncertain_fraction
    return base + u * (1.0 - base)


def _clamp(s: float) -> float:
    return min(1.0, max(0.0, s))


def _atom(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    if isinstance(cond, Eq):
        return _eq_selectivity(cond, columns)
    if isinstance(cond, Neq):
        return 1.0 - _eq_selectivity(Eq(cond.left, cond.right), columns)
    if isinstance(cond, (Leq, Lt, Geq, Gt)):
        return _range_selectivity(cond, columns)
    if isinstance(cond, IsNull) and isinstance(cond.operand, Var):
        col = columns.get(cond.operand.name)
        if col is not None:
            return col.null_fraction
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _eq_selectivity(cond: Eq, columns: Mapping[str, ColumnStats]) -> float:
    left, right = cond.left, cond.right
    if isinstance(left, Var) and isinstance(right, Var):
        return equi_join_selectivity(columns.get(left.name), columns.get(right.name))
    var, const = _var_const(left, right)
    if var is None:
        return DEFAULT_SELECTIVITY
    col = columns.get(var)
    if col is None or col.distinct <= 0:
        return DEFAULT_SELECTIVITY
    if _is_number(const) and _is_number(col.min_value) and _is_number(col.max_value):
        if const < col.min_value or const > col.max_value:
            return 0.0
    return 1.0 / col.distinct


def _range_selectivity(cond: Expression, columns: Mapping[str, ColumnStats]) -> float:
    """Distribution estimate for ``x ⊙ c`` over numeric columns.

    With a harvested :class:`Histogram` the estimate is the actual
    cumulative fraction below/above ``c`` (robust to skew); otherwise it
    falls back to linear interpolation between the column's min/max
    bounds (implicitly assuming uniformity).
    """
    left, right = cond.left, cond.right
    if isinstance(left, Var) and isinstance(right, Const):
        var, const, flipped = left.name, right.value, False
    elif isinstance(left, Const) and isinstance(right, Var):
        var, const, flipped = right.name, left.value, True
    else:
        return DEFAULT_SELECTIVITY
    col = columns.get(var)
    if col is None or not _is_number(const):
        return DEFAULT_SELECTIVITY
    # ``c ⊙ x`` is ``x ⊙' c`` with the comparison mirrored
    below = isinstance(cond, (Leq, Lt)) != flipped  # keeps x <= / < c
    if col.histogram is not None:
        frac = col.histogram.fraction_below(float(const))
        return _clamp(frac if below else 1.0 - frac)
    if not _is_number(col.min_value) or not _is_number(col.max_value):
        return DEFAULT_SELECTIVITY
    lo, hi = float(col.min_value), float(col.max_value)
    if hi <= lo:
        point = lo
        if below:
            return 1.0 if point <= const else 0.0
        return 1.0 if point >= const else 0.0
    if below:
        frac = (float(const) - lo) / (hi - lo)
    else:
        frac = (hi - float(const)) / (hi - lo)
    return _clamp(frac)


def _var_const(a: Expression, b: Expression):
    if isinstance(a, Var) and isinstance(b, Const):
        return a.name, b.value
    if isinstance(b, Var) and isinstance(a, Const):
        return b.name, a.value
    return None, None


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)
