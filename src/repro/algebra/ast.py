"""Logical query plans (``RA_agg``) shared by every engine in the repo.

The same plan evaluates over

* deterministic relations (:mod:`repro.db.engine` — the ``Det``/SGQP
  baseline and per-world ground truth),
* AU-relations (:mod:`repro.algebra.evaluator` — the paper's
  bound-preserving semantics), and
* the baseline systems in :mod:`repro.baselines`.

Plans are built either directly, via the fluent helpers on
:class:`Plan`, or from SQL through :mod:`repro.sql`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.aggregation import AggregateSpec
from ..core.expressions import Expression, Var

__all__ = [
    "Plan",
    "TableRef",
    "Selection",
    "Projection",
    "Join",
    "CrossProduct",
    "Union",
    "Difference",
    "Distinct",
    "Aggregate",
    "Rename",
    "Limit",
    "OrderBy",
    "TopK",
]


class Plan:
    """Base class for logical plan nodes with fluent builders."""

    def children(self) -> Sequence["Plan"]:
        return ()

    # ------------------------------------------------------------------
    # fluent construction
    # ------------------------------------------------------------------
    def where(self, condition: Expression) -> "Selection":
        return Selection(self, condition)

    def select(self, *columns) -> "Projection":
        """Project onto columns.

        Each column is an attribute name, or a ``(expression, name)`` pair.
        """
        cols: List[Tuple[Expression, str]] = []
        for c in columns:
            if isinstance(c, str):
                cols.append((Var(c), c))
            else:
                expr, name = c
                cols.append((Var(expr) if isinstance(expr, str) else expr, name))
        return Projection(self, cols)

    def join(self, other: "Plan", condition: Expression) -> "Join":
        return Join(self, other, condition)

    def cross(self, other: "Plan") -> "CrossProduct":
        return CrossProduct(self, other)

    def union(self, other: "Plan") -> "Union":
        return Union(self, other)

    def minus(self, other: "Plan") -> "Difference":
        return Difference(self, other)

    def distinct(self) -> "Distinct":
        return Distinct(self)

    def grouped(
        self, keys: Sequence[str], aggregates: Sequence[AggregateSpec]
    ) -> "Aggregate":
        return Aggregate(self, list(keys), list(aggregates))

    def aggregate(self, *aggregates: AggregateSpec) -> "Aggregate":
        return Aggregate(self, [], list(aggregates))

    def rename(self, mapping: Dict[str, str]) -> "Rename":
        return Rename(self, dict(mapping))

    def order_by(self, keys: Sequence[str], descending: bool = False) -> "OrderBy":
        return OrderBy(self, list(keys), descending)

    def limit(self, n: int) -> "Limit":
        return Limit(self, n)

    # ------------------------------------------------------------------
    def walk(self):
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def table_names(self) -> List[str]:
        return [n.name for n in self.walk() if isinstance(n, TableRef)]


@dataclass(frozen=True)
class TableRef(Plan):
    """Base-table access."""

    name: str

    def __repr__(self) -> str:
        return f"Table({self.name})"


@dataclass(frozen=True)
class Selection(Plan):
    child: Plan
    condition: Expression

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"σ[{self.condition!r}]({self.child!r})"


@dataclass(frozen=True)
class Projection(Plan):
    child: Plan
    columns: Tuple[Tuple[Expression, str], ...]

    def __init__(self, child: Plan, columns) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        cols = ", ".join(f"{e!r}→{n}" for e, n in self.columns)
        return f"π[{cols}]({self.child!r})"


@dataclass(frozen=True)
class Join(Plan):
    left: Plan
    right: Plan
    condition: Expression

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ⋈[{self.condition!r}] {self.right!r})"


@dataclass(frozen=True)
class CrossProduct(Plan):
    left: Plan
    right: Plan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True)
class Union(Plan):
    left: Plan
    right: Plan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} ∪ {self.right!r})"


@dataclass(frozen=True)
class Difference(Plan):
    left: Plan
    right: Plan

    def children(self) -> Sequence[Plan]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"


@dataclass(frozen=True)
class Distinct(Plan):
    child: Plan

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"δ({self.child!r})"


@dataclass(frozen=True)
class Aggregate(Plan):
    child: Plan
    group_by: Tuple[str, ...]
    aggregates: Tuple[AggregateSpec, ...]
    having: Optional[Expression] = None

    def __init__(self, child, group_by, aggregates, having=None) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "group_by", tuple(group_by))
        object.__setattr__(self, "aggregates", tuple(aggregates))
        object.__setattr__(self, "having", having)

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        aggs = ", ".join(f"{a.kind}({a.expr!r})→{a.name}" for a in self.aggregates)
        gb = ",".join(self.group_by)
        return f"γ[{gb}; {aggs}]({self.child!r})"


@dataclass(frozen=True)
class Rename(Plan):
    child: Plan
    mapping: Tuple[Tuple[str, str], ...]

    def __init__(self, child: Plan, mapping: Dict[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))

    def mapping_dict(self) -> Dict[str, str]:
        return dict(self.mapping)

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        return f"ρ[{dict(self.mapping)}]({self.child!r})"


@dataclass(frozen=True)
class OrderBy(Plan):
    """Presentation-only ordering (deterministic engine only)."""

    child: Plan
    keys: Tuple[str, ...]
    descending: bool = False

    def __init__(self, child: Plan, keys, descending: bool = False) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "descending", descending)

    def children(self) -> Sequence[Plan]:
        return (self.child,)


@dataclass(frozen=True)
class Limit(Plan):
    """First ``n`` rows.

    Without an :class:`OrderBy` child the deterministic engine picks rows
    by the full-tuple domain order (deterministic but arbitrary); with one,
    the engine sorts by the ORDER BY keys — see :class:`TopK`, the fused
    form produced by the optimizer.
    """

    child: Plan
    n: int

    def children(self) -> Sequence[Plan]:
        return (self.child,)


@dataclass(frozen=True)
class TopK(Plan):
    """``ORDER BY keys [DESC] LIMIT n`` fused into a single top-k node.

    The deterministic engine sorts by ``keys`` (all descending when
    ``descending`` is set, mirroring the parser) with the full-tuple domain
    order as tie-break, then keeps the first ``n`` rows by multiplicity.
    The AU engine returns a true (bound-adjusted) top-k when every order
    key is certain and keeps everything otherwise — LIMIT over uncertainly
    *ordered* data cannot soundly drop tuples (see
    :func:`repro.core.operators.au_topk`).
    """

    child: Plan
    keys: Tuple[str, ...]
    descending: bool
    n: int

    def __init__(self, child: Plan, keys, descending: bool, n: int) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "descending", descending)
        object.__setattr__(self, "n", n)

    def children(self) -> Sequence[Plan]:
        return (self.child,)

    def __repr__(self) -> str:
        order = "desc" if self.descending else "asc"
        return f"topk[{','.join(self.keys)} {order}; {self.n}]({self.child!r})"
