"""Evaluate logical plans over AU-databases with bound-preserving semantics.

This is the AU-DB counterpart of :func:`repro.db.engine.evaluate_det`; the
two interpreters share the :mod:`repro.algebra.ast` plan language, which is
how the repo realizes the paper's "same query, rewritten" middleware
architecture: the deterministic engine plays PostgreSQL-on-the-SGW, this
module plays the rewritten query over the relational encoding.

Since PR 4 evaluation is a four-stage pipeline: the logical plan is
optimized (:mod:`repro.algebra.optimizer`), *lowered* into an explicit
physical plan (:func:`repro.exec.physical.lower` — join algorithm,
``Cpr`` compression budgets, and the tuple-operator fallback boundaries
all chosen at plan time), and then interpreted by the selected backend.
:class:`EvalConfig` toggles the Section 10.4/10.5 optimizations:

* ``join_buckets`` — compress the possible side of joins with ``Cpr``;
* ``aggregation_buckets`` — compress foreign possible contributors of
  group-by aggregation;
* ``optimize`` — run the shared logical plan optimizer.  The rewrites
  are exact for the AU semantics, so results are identical with the
  knob on or off (compression budgets excepted: bucket boundaries
  depend on operator inputs, so compressed runs remain *sound* but need
  not be bit-identical across plan shapes);
* ``backend`` — ``"tuple"`` interprets physical plans here;
  ``"vectorized"`` executes them over columnar batches
  (:mod:`repro.exec`) with identical results;
* ``physical`` — ``False`` selects the legacy direct interpretation of
  the logical plan (tuple backend only), kept as the differential
  fuzzer's reference lowering.

``ORDER BY … LIMIT`` / fused ``TopK`` return a true bound-adjusted top-k
when the order keys are certain (:func:`repro.core.operators.au_topk`)
and the sound identity superset otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import telemetry as _tm
from ..core import operators as ops
from ..core.aggregation import aggregate
from ..core.compression import optimized_join
from ..core.expressions import Expression
from ..core.relation import AUDatabase, AURelation
from .ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from .optimizer import DEFAULT_JOIN_ORDER

__all__ = ["EvalConfig", "evaluate_audb", "execute_physical_audb"]


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation knobs for the AU-DB interpreter.

    ``join_buckets`` / ``aggregation_buckets`` of ``None`` select the naive
    (tightest) semantics; integers select the corresponding compression
    budget ``CT`` from the paper's experiments.  ``optimize`` runs the
    shared logical plan optimizer before lowering (exact rewrites;
    default on); ``join_order`` selects its join enumeration strategy
    (``"dp"`` cost-based bushy trees / ``"greedy"``).
    ``adaptive_compression`` (default off, to keep the paper's fixed-CT
    experiments reproducible) lets the planner *place* the join
    compression budget: joins whose estimated inputs fit within the
    budget run the naive — faster here, and strictly tighter — join
    instead of the split/Cpr rewrite.  Either way every join remains
    bound-preserving.

    ``backend`` selects the physical execution backend: ``"tuple"`` (the
    operator-at-a-time interpreter in this module) or ``"vectorized"``
    (:mod:`repro.exec`, columnar batches with planner-chosen
    ``TupleFallback`` boundaries for SG-combining semantics).  Results
    are identical.  ``physical=False`` keeps the legacy direct
    interpretation of logical plans (tuple backend only).

    ``parallelism`` is accepted for symmetry with ``evaluate_det`` and
    threaded to the physical planner, but partition-parallel regions are
    currently only generated for the *deterministic* vectorized backend:
    AU merges would have to SG-combine annotations across morsels, which
    remains future work (see ROADMAP) — AU plans execute serially at any
    setting.

    ``chunk_size`` sets the paged-storage chunk size for the vectorized
    backends (:mod:`repro.db.chunks`): ``None`` selects the default page
    size, ``0`` disables chunked storage (scans materialize whole-table
    columnar images, no zone-map skipping), any positive integer fixes
    the rows-per-chunk.  Results are identical at every setting.
    """

    join_buckets: Optional[int] = None
    aggregation_buckets: Optional[int] = None
    hash_join: bool = True
    optimize: bool = True
    join_order: str = DEFAULT_JOIN_ORDER
    adaptive_compression: bool = False
    backend: str = "tuple"
    parallelism: int = 1
    physical: bool = True
    chunk_size: Optional[int] = None


DEFAULT_CONFIG = EvalConfig()

_NO_HINTS: Dict[int, Optional[int]] = {}


def evaluate_audb(
    plan: Plan,
    db: AUDatabase,
    config: EvalConfig = DEFAULT_CONFIG,
    actuals: Optional[Dict[int, int]] = None,
) -> AURelation:
    """Evaluate ``plan`` over the AU-database ``db``.

    Since the query-session layer (:mod:`repro.session`) this is a thin
    shim over an ephemeral :class:`~repro.session.Connection`; hold a
    ``Connection`` (or a prepared query) to amortize the
    parse/optimize/lower stages across repeated executions.

    By Theorems 3/4/6 the result bounds the result of the plan over any
    incomplete database bounded by ``db``.  ``actuals``, when a dict, is
    filled with the actual number of AU-tuples produced by every node
    (keyed by ``id(node)`` of the logical nodes and, on the physical
    path, the physical nodes too); with ``config.optimize`` the recorded
    nodes belong to the *optimized* plan.
    """
    from ..session import Connection

    return Connection(db, engine="au", config=config).execute(
        plan, actuals=actuals
    )


# ----------------------------------------------------------------------
# physical-plan interpreter (tuple-at-a-time)
# ----------------------------------------------------------------------
def execute_physical_audb(pplan, db: AUDatabase, actuals=None) -> AURelation:
    """Interpret a physical plan with the exact tuple operators.

    All physical choices — certain-key hash vs interval nested loop,
    ``Cpr`` compression and its bucket budget, SG-combining fallback
    boundaries — were made by :func:`repro.exec.physical.lower`; this is
    a thin dispatch onto :mod:`repro.core.operators`.

    When a telemetry trace is active (:mod:`repro.telemetry`) every
    node evaluation gets an operator span with inclusive wall time and
    output AU-tuples; disabled, the hook is one global-load-and-``None``
    check per node.
    """
    tr = _tm._ACTIVE
    if tr is not None:
        span = tr.begin_op(pplan)
        try:
            result = _exec_node(pplan, db, actuals)
        except BaseException:
            tr.end_op(span)
            raise
        tr.end_op(span, len(result))
    else:
        result = _exec_node(pplan, db, actuals)
    if actuals is not None:
        n = len(result)
        actuals[id(pplan)] = n
        for src in pplan.sources:
            actuals[id(src)] = n
    return result


def _pexec(p, db, actuals) -> AURelation:
    return execute_physical_audb(p, db, actuals)


def _exec_node(p, db: AUDatabase, actuals) -> AURelation:
    from ..exec import physical as phys

    if isinstance(p, phys.Scan):
        return db[p.table]
    if isinstance(p, phys.FusedSelectProject):
        rel = _pexec(p.child, db, actuals)
        if p.condition is not None:
            rel = ops.selection(rel, p.condition)
        if p.columns is not None:
            rel = ops.projection(rel, list(p.columns))
        return rel
    if isinstance(p, phys.HashJoin):
        left = _pexec(p.left, db, actuals)
        right = _pexec(p.right, db, actuals)
        if _tm._ACTIVE is not None:
            _tm.annotate(build_rows=len(right))
        return ops.join(left, right, p.condition, allow_certain_hash=True)
    if isinstance(p, phys.NLJoin):
        left = _pexec(p.left, db, actuals)
        right = _pexec(p.right, db, actuals)
        if p.condition is None:
            return ops.cross_product(left, right)
        return ops.join(left, right, p.condition, allow_certain_hash=False)
    if isinstance(p, phys.CompressedJoin):
        left = _pexec(p.left, db, actuals)
        right = _pexec(p.right, db, actuals)
        if _tm._ACTIVE is not None:
            _tm.annotate(buckets=p.buckets, build_rows=len(right))
        return optimized_join(
            left, right, p.condition, p.pair[0], p.pair[1], p.buckets
        )
    if isinstance(p, phys.Concat):
        return ops.union(
            _pexec(p.left, db, actuals), _pexec(p.right, db, actuals)
        )
    if isinstance(p, phys.Rename):
        return ops.rename(_pexec(p.child, db, actuals), p.mapping)
    if isinstance(p, phys.TupleFallback):
        node = p.logical
        if _tm._ACTIVE is not None:
            _tm.annotate(fallback=p.kind)
        if p.kind == "difference":
            return ops.difference(
                _pexec(p.inputs[0], db, actuals),
                _pexec(p.inputs[1], db, actuals),
            )
        if p.kind == "distinct":
            return ops.distinct(_pexec(p.inputs[0], db, actuals))
        if p.kind == "aggregate":
            result = aggregate(
                _pexec(p.inputs[0], db, actuals),
                list(node.group_by),
                list(node.aggregates),
                compress_buckets=p.buckets,
            )
            if node.having is not None:
                result = ops.selection(result, node.having)
            return result
        if p.kind == "topk":
            return ops.au_topk(
                _pexec(p.inputs[0], db, actuals),
                node.keys,
                node.descending,
                node.n,
            )
        raise TypeError(f"unsupported AU fallback {p.kind!r}")
    raise TypeError(f"unsupported physical node {type(p).__name__}")


# ----------------------------------------------------------------------
# legacy direct interpretation of logical plans
# ----------------------------------------------------------------------
def _evaluate(
    plan: Plan,
    db: AUDatabase,
    config: EvalConfig,
    hints: Dict[int, Optional[int]] = _NO_HINTS,
    actuals: Optional[Dict[int, int]] = None,
) -> AURelation:
    result = _evaluate_node(plan, db, config, hints, actuals)
    if actuals is not None:
        actuals[id(plan)] = len(result)
    return result


def _evaluate_node(
    plan: Plan,
    db: AUDatabase,
    config: EvalConfig,
    hints: Dict[int, Optional[int]],
    actuals: Optional[Dict[int, int]],
) -> AURelation:
    if isinstance(plan, TableRef):
        return db[plan.name]
    if isinstance(plan, Selection):
        return ops.selection(
            _evaluate(plan.child, db, config, hints, actuals), plan.condition
        )
    if isinstance(plan, Projection):
        return ops.projection(
            _evaluate(plan.child, db, config, hints, actuals), list(plan.columns)
        )
    if isinstance(plan, Join):
        left = _evaluate(plan.left, db, config, hints, actuals)
        right = _evaluate(plan.right, db, config, hints, actuals)
        buckets = hints.get(id(plan), config.join_buckets)
        if buckets is not None:
            attrs = _join_attributes(plan.condition, left, right)
            if attrs is not None:
                return optimized_join(
                    left, right, plan.condition, attrs[0], attrs[1],
                    buckets,
                )
        return ops.join(
            left, right, plan.condition, allow_certain_hash=config.hash_join
        )
    if isinstance(plan, CrossProduct):
        return ops.cross_product(
            _evaluate(plan.left, db, config, hints, actuals),
            _evaluate(plan.right, db, config, hints, actuals),
        )
    if isinstance(plan, Union):
        return ops.union(
            _evaluate(plan.left, db, config, hints, actuals),
            _evaluate(plan.right, db, config, hints, actuals),
        )
    if isinstance(plan, Difference):
        return ops.difference(
            _evaluate(plan.left, db, config, hints, actuals),
            _evaluate(plan.right, db, config, hints, actuals),
        )
    if isinstance(plan, Distinct):
        return ops.distinct(_evaluate(plan.child, db, config, hints, actuals))
    if isinstance(plan, Aggregate):
        result = aggregate(
            _evaluate(plan.child, db, config, hints, actuals),
            list(plan.group_by),
            list(plan.aggregates),
            compress_buckets=config.aggregation_buckets,
        )
        if plan.having is not None:
            result = ops.selection(result, plan.having)
        return result
    if isinstance(plan, Rename):
        return ops.rename(
            _evaluate(plan.child, db, config, hints, actuals), plan.mapping_dict()
        )
    if isinstance(plan, OrderBy):
        return _evaluate(plan.child, db, config, hints, actuals)
    if isinstance(plan, TopK):
        # sound true top-k when the order keys are certain; identity
        # (keep everything) otherwise — see ops.au_topk
        return ops.au_topk(
            _evaluate(plan.child, db, config, hints, actuals),
            plan.keys,
            plan.descending,
            plan.n,
        )
    if isinstance(plan, Limit):
        child = plan.child
        if isinstance(child, OrderBy):
            # thread the ORDER BY keys into the limit (the unfused form
            # of TopK), mirroring the deterministic engine
            return ops.au_topk(
                _evaluate(child.child, db, config, hints, actuals),
                child.keys,
                child.descending,
                plan.n,
            )
        # bare LIMIT over unordered uncertain data: keep everything
        # (sound over-approximation).
        return _evaluate(child, db, config, hints, actuals)
    raise TypeError(f"unsupported plan node {type(plan).__name__}")


def _join_attributes(
    condition: Expression, left: AURelation, right: AURelation
) -> Optional[tuple]:
    """Pick compression attributes (one per side) from an equi-conjunct."""
    from ..core.operators import _extract_equi_pairs

    pairs = _extract_equi_pairs(condition, left.schema, right.schema)
    if pairs:
        return pairs[0]
    return None
