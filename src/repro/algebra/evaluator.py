"""Evaluate logical plans over AU-databases with bound-preserving semantics.

This is the AU-DB counterpart of :func:`repro.db.engine.evaluate_det`; the
two interpreters share the :mod:`repro.algebra.ast` plan language, which is
how the repo realizes the paper's "same query, rewritten" middleware
architecture: the deterministic engine plays PostgreSQL-on-the-SGW, this
module plays the rewritten query over the relational encoding.

:class:`EvalConfig` toggles the Section 10.4/10.5 optimizations:

* ``join_buckets`` — compress the possible side of joins with ``Cpr``;
* ``aggregation_buckets`` — compress foreign possible contributors of
  group-by aggregation;
* ``optimize`` — run the shared logical plan optimizer
  (:mod:`repro.algebra.optimizer`: selection pushdown, join promotion and
  reordering, OrderBy+Limit fusion, projection pruning) before
  interpreting the plan.  The rewrites are exact for the AU semantics, so
  results are identical with the knob on or off (compression budgets
  excepted: bucket boundaries depend on operator inputs, so compressed
  runs remain *sound* but need not be bit-identical across plan shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core import operators as ops
from ..core.aggregation import aggregate
from ..core.compression import optimized_join
from ..core.expressions import Expression, Var
from ..core.relation import AUDatabase, AURelation
from .ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Rename,
    Selection,
    TableRef,
    TopK,
    Union,
)
from .optimizer import Statistics, optimize

__all__ = ["EvalConfig", "evaluate_audb"]


@dataclass(frozen=True)
class EvalConfig:
    """Evaluation knobs for the AU-DB interpreter.

    ``join_buckets`` / ``aggregation_buckets`` of ``None`` select the naive
    (tightest) semantics; integers select the corresponding compression
    budget ``CT`` from the paper's experiments.  ``optimize`` runs the
    shared logical plan optimizer before interpretation (exact rewrites;
    default on).
    """

    join_buckets: Optional[int] = None
    aggregation_buckets: Optional[int] = None
    hash_join: bool = True
    optimize: bool = True


DEFAULT_CONFIG = EvalConfig()


def evaluate_audb(
    plan: Plan, db: AUDatabase, config: EvalConfig = DEFAULT_CONFIG
) -> AURelation:
    """Evaluate ``plan`` over the AU-database ``db``.

    By Theorems 3/4/6 the result bounds the result of the plan over any
    incomplete database bounded by ``db``.
    """
    if config.optimize:
        plan = optimize(plan, Statistics.from_database(db))
    return _evaluate(plan, db, config)


def _evaluate(plan: Plan, db: AUDatabase, config: EvalConfig) -> AURelation:
    if isinstance(plan, TableRef):
        return db[plan.name]
    if isinstance(plan, Selection):
        return ops.selection(_evaluate(plan.child, db, config), plan.condition)
    if isinstance(plan, Projection):
        return ops.projection(
            _evaluate(plan.child, db, config), list(plan.columns)
        )
    if isinstance(plan, Join):
        left = _evaluate(plan.left, db, config)
        right = _evaluate(plan.right, db, config)
        if config.join_buckets is not None:
            attrs = _join_attributes(plan.condition, left, right)
            if attrs is not None:
                return optimized_join(
                    left, right, plan.condition, attrs[0], attrs[1],
                    config.join_buckets,
                )
        return ops.join(
            left, right, plan.condition, allow_certain_hash=config.hash_join
        )
    if isinstance(plan, CrossProduct):
        return ops.cross_product(
            _evaluate(plan.left, db, config),
            _evaluate(plan.right, db, config),
        )
    if isinstance(plan, Union):
        return ops.union(
            _evaluate(plan.left, db, config),
            _evaluate(plan.right, db, config),
        )
    if isinstance(plan, Difference):
        return ops.difference(
            _evaluate(plan.left, db, config),
            _evaluate(plan.right, db, config),
        )
    if isinstance(plan, Distinct):
        return ops.distinct(_evaluate(plan.child, db, config))
    if isinstance(plan, Aggregate):
        result = aggregate(
            _evaluate(plan.child, db, config),
            list(plan.group_by),
            list(plan.aggregates),
            compress_buckets=config.aggregation_buckets,
        )
        if plan.having is not None:
            result = ops.selection(result, plan.having)
        return result
    if isinstance(plan, Rename):
        return ops.rename(_evaluate(plan.child, db, config), plan.mapping_dict())
    if isinstance(plan, OrderBy):
        return _evaluate(plan.child, db, config)
    if isinstance(plan, (Limit, TopK)):
        # LIMIT / top-k over unordered uncertain data: keep everything
        # (sound over-approximation).
        return _evaluate(plan.child, db, config)
    raise TypeError(f"unsupported plan node {type(plan).__name__}")


def _join_attributes(
    condition: Expression, left: AURelation, right: AURelation
) -> Optional[tuple]:
    """Pick compression attributes (one per side) from an equi-conjunct."""
    from ..core.operators import _extract_equi_pairs

    pairs = _extract_equi_pairs(condition, left.schema, right.schema)
    if pairs:
        return pairs[0]
    return None
