"""Lenses: data-cleaning operators that expose their uncertainty as AU-DBs.

Section 11.4 of the paper: a *lens* applies a cleaning heuristic, selects
one repair as the selected-guess world, and encodes the space of all
repairs as an incomplete database.  The flagship example — and the one the
real-world experiments (Figure 17) are built on — is the **key-repair
lens**: tuples violating a primary key are grouped by key; one tuple per
group is picked for the SGW while the attribute ranges of the group bound
every possible repair.

``key_repair_lens`` produces both the AU-relation (what the paper's system
would materialize) and the underlying x-relation (one x-tuple per key
group), which lets the ground-truth oracle and the baselines run on the
same repair space.

``make_uncertain`` mirrors the paper's ``MakeUncertain(lb, sg, ub)``
construct for introducing attribute-level uncertainty inside queries
(Example 16).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .core.ranges import RangeValue, domain_max, domain_min
from .core.relation import AURelation
from .db.storage import DetRelation
from .incomplete.xdb import XRelation

__all__ = ["KeyRepairResult", "key_repair_lens", "make_uncertain"]


@dataclass
class KeyRepairResult:
    """Output of the key-repair lens."""

    audb: AURelation
    xdb: XRelation
    selected: DetRelation
    n_violating_keys: int
    avg_alternatives: float


def key_repair_lens(
    rel: DetRelation,
    key_columns: Sequence[str],
    rng: Optional[random.Random] = None,
) -> KeyRepairResult:
    """Repair primary-key violations, keeping all repairs as uncertainty.

    For every key value with multiple distinct tuples, one tuple is picked
    (uniformly, seeded) as the selected guess; the AU-tuple's attribute
    ranges cover all candidates.  Keys with a single tuple stay certain.
    """
    rng = rng or random.Random(0)
    key_idx = [rel.attr_index(k) for k in key_columns]

    groups: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for t, m in rel.tuples():
        key = tuple(t[i] for i in key_idx)
        bucket = groups.setdefault(key, [])
        for _ in range(min(m, 1)):
            if t not in bucket:
                bucket.append(t)

    audb = AURelation(rel.schema)
    xrel = XRelation(rel.schema)
    selected = DetRelation(rel.schema)
    n_violating = 0
    total_alternatives = 0

    for key, candidates in groups.items():
        if len(candidates) == 1:
            t = candidates[0]
            audb.add(t, (1, 1, 1))
            xrel.add_certain(t)
            selected.add(t, 1)
            continue
        n_violating += 1
        total_alternatives += len(candidates)
        pick = rng.randrange(len(candidates))
        sg = candidates[pick]
        values = []
        for i in range(len(rel.schema)):
            column = [c[i] for c in candidates]
            values.append(
                RangeValue(domain_min(column), sg[i], domain_max(column))
            )
        audb.add(values, (1, 1, 1))
        # order alternatives so pickMax (uniform probabilities -> first
        # alternative) matches the lens' selected guess
        ordered = [sg] + [c for j, c in enumerate(candidates) if j != pick]
        xrel.add(ordered)
        selected.add(sg, 1)

    avg_alt = total_alternatives / n_violating if n_violating else 0.0
    return KeyRepairResult(audb, xrel, selected, n_violating, avg_alt)


def make_uncertain(lb: Any, sg: Any, ub: Any) -> RangeValue:
    """The ``MakeUncertain(e_lb, e_sg, e_ub)`` construct (Example 16)."""
    return RangeValue(lb, sg, ub)
