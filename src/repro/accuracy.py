"""Accuracy metrics for comparing systems against ground truth.

Implements the quality measures of the paper's evaluation:

* **certain-tuple recall** (Figure 17 "cert. tup."): fraction of the true
  certain answers a system reports as certain;
* **possible-tuple recall by id / by value** (Figure 17): fraction of true
  possible answer *groups* (keyed tuples) covered, and of the raw possible
  tuples covered;
* **attribute-bound tightness** (Figure 17 "attr. bounds"): average ratio
  of a system's bound width to the maximally tight bound width per certain
  tuple (1.0 = tight; larger = over-approximation);
* **over-grouping %** and **range over-estimation factor** (Figure 15);
* **mean bound range** (Figure 13d).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .core.ranges import RangeValue, domain_key
from .core.relation import AURelation
from .core.tuples import sg_tuple

__all__ = [
    "certain_tuple_recall",
    "possible_recall_by_id",
    "possible_recall_by_value",
    "bound_tightness",
    "over_grouping_percent",
    "range_overestimation_factor",
    "mean_numeric_range",
    "audb_certain_keys",
    "audb_possible_keys",
]


def _keys_of(
    bag: Mapping[Tuple[Any, ...], int], key_idx: Sequence[int]
) -> set:
    return {tuple(t[i] for i in key_idx) for t in bag}


def audb_certain_keys(rel: AURelation, key_columns: Sequence[str]) -> set:
    """Keys of tuples an AU-DB reports certain (lower bound > 0).

    The key is taken at the tuple's SG values: a group-by output with a
    non-zero lower multiplicity certifies that the *SG group* exists in
    every world (Definition 28 derives the bound from members whose
    group-by values are certain and equal the SG key), even when the
    tuple's key box was widened by other possible members.
    """
    idx = [rel.attr_index(k) for k in key_columns]
    out = set()
    for t, (lb, _sg, _ub) in rel.tuples():
        if lb > 0:
            out.add(tuple(t[i].sg for i in idx))
    return out


def audb_possible_keys(rel: AURelation, key_columns: Sequence[str]) -> set:
    """Keys an AU-DB considers possible (via SG values of possible tuples)."""
    idx = [rel.attr_index(k) for k in key_columns]
    out = set()
    for t, (_lb, _sg, ub) in rel.tuples():
        if ub > 0:
            out.add(tuple(t[i].sg for i in idx))
    return out


def certain_tuple_recall(
    reported_certain_keys: Iterable[Tuple[Any, ...]],
    true_certain: Mapping[Tuple[Any, ...], int],
    key_idx: Sequence[int],
) -> float:
    """Fraction of truly certain keys that the system reports certain."""
    true_keys = _keys_of(true_certain, key_idx)
    if not true_keys:
        return 1.0
    reported = set(reported_certain_keys)
    return len(true_keys & reported) / len(true_keys)


def possible_recall_by_id(
    rel: AURelation,
    true_possible: Mapping[Tuple[Any, ...], int],
    key_columns: Sequence[str],
    result_key_idx: Sequence[int],
) -> float:
    """Fraction of possible-answer key groups covered by some AU tuple.

    A group (key value) is covered when at least one AU tuple's key range
    contains it.
    """
    idx = [rel.attr_index(k) for k in key_columns]
    true_keys = _keys_of(true_possible, result_key_idx)
    if not true_keys:
        return 1.0
    covered = 0
    au_rows = list(rel.tuples())
    for key in true_keys:
        for t, (_lb, _sg, ub) in au_rows:
            if ub > 0 and all(
                t[i].bounds_value(v) for i, v in zip(idx, key)
            ):
                covered += 1
                break
    return covered / len(true_keys)


def possible_recall_by_value(
    rel: AURelation, true_possible: Mapping[Tuple[Any, ...], int]
) -> float:
    """Fraction of raw possible tuples some AU tuple bounds."""
    if not true_possible:
        return 1.0
    au_rows = [(t, ann) for t, ann in rel.tuples() if ann[2] > 0]
    covered = 0
    for world_tuple in true_possible:
        for t, _ann in au_rows:
            if len(t) == len(world_tuple) and all(
                r.bounds_value(v) for r, v in zip(t, world_tuple)
            ):
                covered += 1
                break
    return covered / len(true_possible)


def bound_tightness(
    rel: AURelation,
    exact_bounds: Mapping[Tuple[Any, ...], List[Tuple[Any, Any]]],
    key_columns: Sequence[str],
) -> Tuple[float, float]:
    """(min, max) over certain tuples of mean relative bound size.

    For each certain AU tuple, each numeric non-key attribute contributes
    ``audb_width / exact_width`` (1.0 when both are points); the tuple's
    score is the mean.  Returns the min and max scores, matching the
    "attr. bounds min / max" columns of Figure 17.
    """
    key_idx = [rel.attr_index(k) for k in key_columns]
    value_idx = [i for i in range(len(rel.schema)) if i not in key_idx]
    scores: List[float] = []
    for t, (lb, _sg, _ub) in rel.tuples():
        if lb <= 0 or not all(t[i].is_certain for i in key_idx):
            continue
        key = tuple(t[i].sg for i in key_idx)
        exact = exact_bounds.get(key)
        if exact is None:
            continue
        ratios: List[float] = []
        for pos, i in enumerate(value_idx):
            ratios.append(_relative_width(t[i], exact[pos]))
        if ratios:
            scores.append(sum(ratios) / len(ratios))
    if not scores:
        return (float("nan"), float("nan"))
    return (min(scores), max(scores))


def _relative_width(value: RangeValue, exact: Tuple[Any, Any]) -> float:
    lo, hi = exact
    if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
        exact_width = 0.0 if domain_key(lo) == domain_key(hi) else 1.0
        au_width = 0.0 if value.is_certain else 1.0
        return 1.0 if exact_width == au_width else max(au_width, 1.0)
    exact_width = float(hi) - float(lo)
    au_width = value.width()
    if exact_width == 0.0:
        return 1.0 if au_width == 0.0 else 1.0 + au_width
    return max(1.0, au_width / exact_width)


def over_grouping_percent(
    rel: AURelation,
    group_columns: Sequence[str],
    true_group_sizes: Mapping[Tuple[Any, ...], int],
    xdb_contributions: Mapping[Tuple[Any, ...], int],
) -> float:
    """Figure 15a: average % increase in per-group contributor count.

    ``true_group_sizes`` maps each possible group key to the number of
    inputs that can truly contribute; ``xdb_contributions`` maps it to the
    number of inputs the AU-DB associates with the group's output tuple.
    """
    increases: List[float] = []
    for key, true_n in true_group_sizes.items():
        if true_n <= 0:
            continue
        audb_n = xdb_contributions.get(key, true_n)
        increases.append(100.0 * max(0, audb_n - true_n) / true_n)
    return sum(increases) / len(increases) if increases else 0.0


def range_overestimation_factor(
    rel: AURelation,
    agg_column: str,
    key_columns: Sequence[str],
    exact_bounds: Mapping[Tuple[Any, ...], List[Tuple[Any, Any]]],
    exact_value_pos: int = 0,
) -> float:
    """Figure 15b: mean ratio of AU-DB aggregate range to the tight range."""
    agg_idx = rel.attr_index(agg_column)
    key_idx = [rel.attr_index(k) for k in key_columns]
    ratios: List[float] = []
    for t, (_lb, _sg, ub) in rel.tuples():
        if ub == 0:
            continue
        key = tuple(t[i].sg for i in key_idx)
        exact = exact_bounds.get(key)
        if exact is None:
            continue
        lo, hi = exact[exact_value_pos]
        if not isinstance(lo, (int, float)) or not isinstance(hi, (int, float)):
            continue
        exact_width = float(hi) - float(lo)
        au_width = t[agg_idx].width()
        if exact_width <= 0:
            ratios.append(1.0 if au_width <= 0 else 1.0 + au_width)
        else:
            ratios.append(max(1.0, au_width / exact_width))
    return sum(ratios) / len(ratios) if ratios else 1.0


def mean_numeric_range(rel: AURelation, column: str) -> float:
    """Figure 13d: mean width of a numeric column's ranges."""
    idx = rel.attr_index(column)
    widths = [t[idx].width() for t, _ann in rel.tuples()]
    finite = [w for w in widths if math.isfinite(w)]
    return sum(finite) / len(finite) if finite else 0.0
