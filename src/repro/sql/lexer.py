"""Tokenizer for the SQL subset supported by the frontend."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = ["Token", "tokenize", "SqlSyntaxError"]

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "ORDER", "LIMIT", "AS", "AND", "OR", "NOT", "JOIN", "ON", "INNER",
    "CROSS", "UNION", "EXCEPT", "ALL", "ASC", "DESC", "TRUE", "FALSE",
    "NULL", "IS", "IN", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END",
}

SYMBOLS = ["<>", "<=", ">=", "!=", "=", "<", ">", "(", ")", ",", "+", "-", "*", "/", "."]


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL input."""


@dataclass(frozen=True)
class Token:
    # 'keyword' | 'ident' | 'number' | 'string' | 'symbol' | 'param' | 'eof'
    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value}"


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; keywords are case-insensitive."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            j = sql.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if sql[j] == "'" and j + 1 < n and sql[j + 1] == "'":
                    buf.append("'")
                    j += 2
                    continue
                if sql[j] == "'":
                    break
                buf.append(sql[j])
                j += 1
            else:
                raise SqlSyntaxError(f"unterminated string at {i}")
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                if sql[j] == ".":
                    seen_dot = True
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch == "?":
            # positional parameter placeholder; the parser numbers them
            tokens.append(Token("param", "?", i))
            i += 1
            continue
        if ch == ":" and i + 1 < n and (sql[i + 1].isalpha() or sql[i + 1] == "_"):
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            tokens.append(Token("param", sql[i + 1 : j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        for sym in SYMBOLS:
            if sql.startswith(sym, i):
                tokens.append(Token("symbol", sym, i))
                i += len(sym)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", "", n))
    return tokens
