"""Recursive-descent parser: SQL text → logical plans.

Supported subset (enough for every query in the paper):

.. code-block:: sql

    SELECT [DISTINCT] expr [AS name], ...
    FROM table [, table ...] [JOIN table ON cond ...]
    [WHERE cond] [GROUP BY col, ...] [HAVING cond]
    [ORDER BY col [DESC], ...] [LIMIT n]
    [UNION / EXCEPT select]

Aggregates ``SUM/COUNT/MIN/MAX/AVG`` in the select list trigger an
:class:`~repro.algebra.ast.Aggregate` node; ``CASE WHEN`` maps to
:class:`~repro.core.expressions.If`.  Attribute names are assumed globally
unique across joined tables (TPC-H style), which keeps name resolution
simple and mirrors the paper's examples.

``ORDER BY`` keys that the select list projects away (legal SQL) are
sorted — and, with ``LIMIT``, top-k'd via
:class:`~repro.algebra.ast.TopK` — *below* the projection, so the
deterministic engine returns the correct rows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..algebra.ast import (
    Aggregate,
    CrossProduct,
    Difference,
    Distinct,
    Join,
    Limit,
    OrderBy,
    Plan,
    Projection,
    Selection,
    TableRef,
    TopK,
    Union,
)
from ..core.aggregation import AggregateSpec
from ..core.expressions import (
    And,
    Const,
    Eq,
    Expression,
    Geq,
    Gt,
    If,
    IsNull,
    Leq,
    Lt,
    Neq,
    Not,
    Or,
    Parameter,
    Var,
)
from .lexer import SqlSyntaxError, Token, tokenize

__all__ = ["parse_sql", "SqlSyntaxError"]

AGG_FUNCTIONS = {"SUM", "COUNT", "MIN", "MAX", "AVG"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.n_positional_params = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            raise SqlSyntaxError(
                f"expected {value or kind} at position {got.position}, got {got.value!r}"
            )
        return tok

    def accept_kw(self, *words: str) -> bool:
        save = self.pos
        for w in words:
            if not self.accept("keyword", w):
                self.pos = save
                return False
        return True

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Plan:
        plan = self.select_statement()
        while True:
            if self.accept_kw("UNION"):
                self.accept("keyword", "ALL")
                plan = Union(plan, self.select_statement())
            elif self.accept_kw("EXCEPT"):
                self.accept("keyword", "ALL")
                plan = Difference(plan, self.select_statement())
            else:
                break
        self.expect("eof")
        return plan

    def select_statement(self) -> Plan:
        self.expect("keyword", "SELECT")
        is_distinct = bool(self.accept("keyword", "DISTINCT"))
        select_items = self.select_list()
        self.expect("keyword", "FROM")
        plan = self.from_clause()
        if self.accept_kw("WHERE"):
            plan = Selection(plan, self.expression())
        group_by: List[str] = []
        if self.accept_kw("GROUP", "BY"):
            group_by = self.column_name_list()
        having: Optional[Expression] = None
        if self.accept_kw("HAVING"):
            having = self.expression()

        plan = self._apply_select(plan, select_items, group_by, having)

        if is_distinct:
            plan = Distinct(plan)
        keys: List[str] = []
        descending = False
        if self.accept_kw("ORDER", "BY"):
            while True:
                keys.append(self.expect("ident").value)
                if self.accept("keyword", "DESC"):
                    descending = True
                else:
                    self.accept("keyword", "ASC")
                if not self.accept("symbol", ","):
                    break
        limit_n: Optional[int] = None
        if self.accept_kw("LIMIT"):
            limit_n = int(self.expect("number").value)

        if keys and isinstance(plan, Distinct) and isinstance(plan.child, Projection):
            visible = {name for _, name in plan.child.columns}
            if not all(k in visible for k in keys):
                # mirrors real SQL: "for SELECT DISTINCT, ORDER BY
                # expressions must appear in select list"
                raise SqlSyntaxError(
                    "ORDER BY column must appear in the SELECT DISTINCT list"
                )
        if keys and isinstance(plan, Projection):
            out_names = {name for _, name in plan.columns}
            hidden = list(dict.fromkeys(k for k in keys if k not in out_names))
            if hidden:
                # ORDER BY mentions columns the projection drops (legal
                # SQL).  Extend the projection with the hidden keys so the
                # sort sees select-list aliases (resolved first, as SQL
                # requires — including computed ones) *and* the base
                # columns, then re-project to the select list on top.
                inner = Projection(
                    plan.child,
                    list(plan.columns) + [(Var(k), k) for k in hidden],
                )
                sorted_plan: Plan
                if limit_n is not None:
                    sorted_plan = TopK(inner, keys, descending, limit_n)
                else:
                    sorted_plan = OrderBy(inner, keys, descending)
                return Projection(
                    sorted_plan, [(Var(name), name) for _, name in plan.columns]
                )
        if keys:
            plan = OrderBy(plan, keys, descending)
        if limit_n is not None:
            plan = Limit(plan, limit_n)
        return plan

    def _apply_select(
        self,
        plan: Plan,
        items: List[Tuple[object, str]],
        group_by: List[str],
        having: Optional[Expression],
    ) -> Plan:
        """Split the select list into group-by columns, aggregates, and
        plain projections; emit Aggregate / Projection nodes."""
        has_aggs = any(isinstance(e, AggregateSpec) for e, _ in items)
        if not has_aggs and not group_by:
            if having is not None:
                # previously dropped silently; a HAVING can only filter
                # groups, so without grouping it is a malformed query
                raise SqlSyntaxError(
                    "HAVING requires GROUP BY or aggregates in the "
                    "select list"
                )
            if len(items) == 1 and isinstance(items[0][0], str):
                return plan  # SELECT *
            columns = [(e, name) for e, name in items]
            return Projection(plan, columns)

        aggregates: List[AggregateSpec] = []
        out_columns: List[Tuple[Expression, str]] = []
        for e, name in items:
            if isinstance(e, AggregateSpec):
                spec = AggregateSpec(e.kind, e.expr, name)
                aggregates.append(spec)
                out_columns.append((Var(name), name))
            else:
                if not isinstance(e, Var) or e.name not in group_by:
                    raise SqlSyntaxError(
                        f"non-aggregate select item {name!r} must be a "
                        "GROUP BY column"
                    )
                out_columns.append((e, name))
        agg = Aggregate(plan, group_by, aggregates, having)
        # re-project to the select-list order / names if it differs
        natural = list(group_by) + [a.name for a in aggregates]
        wanted = [name for _, name in out_columns]
        if wanted != natural:
            return Projection(agg, out_columns)
        return agg

    def select_list(self) -> List[Tuple[object, str]]:
        if self.accept("symbol", "*"):
            return [("*", "*")]
        items: List[Tuple[object, str]] = []
        while True:
            item = self.select_item()
            items.append(item)
            if not self.accept("symbol", ","):
                break
        return items

    def select_item(self) -> Tuple[object, str]:
        expr = self.expression_or_aggregate()
        if self.accept("keyword", "AS"):
            name = self.expect("ident").value
        else:
            maybe = self.accept("ident")
            if maybe is not None:
                name = maybe.value
            elif isinstance(expr, Var):
                name = expr.name
            elif isinstance(expr, AggregateSpec):
                name = expr.name
            else:
                name = f"col{len('') or 0}_{self.pos}"
        return expr, name

    def expression_or_aggregate(self):
        tok = self.peek()
        if tok.kind == "ident" and tok.value.upper() in AGG_FUNCTIONS:
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "symbol" and nxt.value == "(":
                return self.aggregate_call()
        return self.expression()

    def aggregate_call(self) -> AggregateSpec:
        fn = self.expect("ident").value.upper()
        self.expect("symbol", "(")
        if fn == "COUNT":
            if self.accept("symbol", "*"):
                self.expect("symbol", ")")
                return AggregateSpec("count", None, "count")
            self.accept("keyword", "DISTINCT")  # tolerated, bag count
            expr = self.expression()
            self.expect("symbol", ")")
            return AggregateSpec("count", expr, "count")
        expr = self.expression()
        self.expect("symbol", ")")
        return AggregateSpec(fn.lower(), expr, fn.lower())

    def column_name_list(self) -> List[str]:
        names = [self.expect("ident").value]
        while self.accept("symbol", ","):
            names.append(self.expect("ident").value)
        return names

    # -- FROM -------------------------------------------------------------
    def from_clause(self) -> Plan:
        plan = self.table_factor()
        while True:
            if self.accept("symbol", ","):
                plan = CrossProduct(plan, self.table_factor())
            elif self.accept_kw("CROSS", "JOIN"):
                plan = CrossProduct(plan, self.table_factor())
            elif self.peek().value in {"JOIN", "INNER"}:
                self.accept("keyword", "INNER")
                self.expect("keyword", "JOIN")
                right = self.table_factor()
                self.expect("keyword", "ON")
                plan = Join(plan, right, self.expression())
            else:
                break
        return plan

    def table_factor(self) -> Plan:
        if self.accept("symbol", "("):
            plan = self.select_statement()
            self.expect("symbol", ")")
            self.accept("keyword", "AS")
            self.accept("ident")  # optional subquery alias, names pass through
            return plan
        name = self.expect("ident").value
        # optional table alias (ignored; attribute names are global)
        if self.peek().kind == "ident":
            self.advance()
        return TableRef(name)

    # -- expressions (precedence climbing) ---------------------------------
    def expression(self) -> Expression:
        return self.or_expr()

    def or_expr(self) -> Expression:
        left = self.and_expr()
        while self.accept("keyword", "OR"):
            left = Or(left, self.and_expr())
        return left

    def and_expr(self) -> Expression:
        left = self.not_expr()
        while self.accept("keyword", "AND"):
            left = And(left, self.not_expr())
        return left

    def not_expr(self) -> Expression:
        if self.accept("keyword", "NOT"):
            return Not(self.not_expr())
        return self.comparison()

    def comparison(self) -> Expression:
        left = self.additive()
        tok = self.peek()
        if tok.kind == "symbol" and tok.value in {"=", "<>", "!=", "<=", ">=", "<", ">"}:
            op = self.advance().value
            right = self.additive()
            return {
                "=": Eq,
                "<>": Neq,
                "!=": Neq,
                "<=": Leq,
                ">=": Geq,
                "<": Lt,
                ">": Gt,
            }[op](left, right)
        if self.accept_kw("IS"):
            negate = bool(self.accept("keyword", "NOT"))
            self.expect("keyword", "NULL")
            test: Expression = IsNull(left)
            return Not(test) if negate else test
        if self.accept_kw("BETWEEN"):
            lo = self.additive()
            self.expect("keyword", "AND")
            hi = self.additive()
            return And(Geq(left, lo), Leq(left, hi))
        if self.accept_kw("IN"):
            self.expect("symbol", "(")
            options = [self.additive()]
            while self.accept("symbol", ","):
                options.append(self.additive())
            self.expect("symbol", ")")
            cond: Expression = Eq(left, options[0])
            for opt in options[1:]:
                cond = Or(cond, Eq(left, opt))
            return cond
        return left

    def additive(self) -> Expression:
        left = self.multiplicative()
        while True:
            if self.accept("symbol", "+"):
                left = left + self.multiplicative()
            elif self.accept("symbol", "-"):
                left = left - self.multiplicative()
            else:
                return left

    def multiplicative(self) -> Expression:
        left = self.unary()
        while True:
            if self.accept("symbol", "*"):
                left = left * self.unary()
            elif self.accept("symbol", "/"):
                left = left / self.unary()
            else:
                return left

    def unary(self) -> Expression:
        if self.accept("symbol", "-"):
            return -self.unary()
        return self.primary()

    def primary(self) -> Expression:
        tok = self.peek()
        if tok.kind == "ident" and tok.value.upper() == "MAKEUNCERTAIN":
            nxt = self.tokens[self.pos + 1]
            if nxt.kind == "symbol" and nxt.value == "(":
                from ..core.expressions import MakeUncertain

                self.advance()
                self.expect("symbol", "(")
                lb = self.expression()
                self.expect("symbol", ",")
                sg = self.expression()
                self.expect("symbol", ",")
                ub = self.expression()
                self.expect("symbol", ")")
                return MakeUncertain(lb, sg, ub)
        if tok.kind == "param":
            self.advance()
            if tok.value == "?":
                # positional placeholders number left-to-right, 0-based
                p = Parameter(self.n_positional_params)
                self.n_positional_params += 1
                return p
            return Parameter(tok.value)
        if tok.kind == "number":
            self.advance()
            text = tok.value
            return Const(float(text) if "." in text else int(text))
        if tok.kind == "string":
            self.advance()
            return Const(tok.value)
        if tok.kind == "keyword" and tok.value in {"TRUE", "FALSE"}:
            self.advance()
            return Const(tok.value == "TRUE")
        if tok.kind == "keyword" and tok.value == "NULL":
            self.advance()
            return Const(None)
        if tok.kind == "keyword" and tok.value == "CASE":
            return self.case_expression()
        if tok.kind == "symbol" and tok.value == "(":
            self.advance()
            inner = self.expression()
            self.expect("symbol", ")")
            return inner
        if tok.kind == "ident":
            self.advance()
            name = tok.value
            if self.accept("symbol", "."):
                # qualified name: keep only the attribute (global names)
                name = self.expect("ident").value
            return Var(name)
        raise SqlSyntaxError(
            f"unexpected token {tok.value!r} at position {tok.position}"
        )

    def case_expression(self) -> Expression:
        self.expect("keyword", "CASE")
        branches: List[Tuple[Expression, Expression]] = []
        while self.accept("keyword", "WHEN"):
            cond = self.expression()
            self.expect("keyword", "THEN")
            value = self.expression()
            branches.append((cond, value))
        default: Expression = Const(None)
        if self.accept("keyword", "ELSE"):
            default = self.expression()
        self.expect("keyword", "END")
        result = default
        for cond, value in reversed(branches):
            result = If(cond, value, result)
        return result


def parse_sql(sql: str) -> Plan:
    """Parse SQL text into a logical plan."""
    return _Parser(tokenize(sql)).parse()
